"""One shard of a partitioned NectarSystem (the worker-side runtime).

A :class:`Partitioning` cuts a :class:`~repro.topology.fabrics.FabricSpec`
on inter-HUB fiber boundaries: each partition owns a contiguous slice of
the fabric's hubs (construction order), every CAB lives with its hub,
and the links whose endpoints land in different partitions become *cut
links*.  :class:`PartitionSystem` then instantiates exactly one
partition's worth of real hardware inside its own
:class:`~repro.sim.Simulator`:

* Local hubs, their CAB stacks, and local-local fibers are built with
  the same names, ports, and per-link RNG streams as the single-process
  system, so their event sequences are identical.
* Remote hubs exist only as name-carrying proxies registered with the
  partition's :class:`~repro.datalink.routing.Router`.  Routing — BFS,
  parallel-link flow hashing, route caching — operates purely on names
  and the full link list, so every partition computes the *same* routes
  the single-process router would, while only materializing tables for
  the CAB pairs its local senders actually use (no global BFS).
* Each cut link's transmit side is a :class:`_BoundaryFiber`: the normal
  :class:`~repro.hardware.fiber.Fiber` serialisation model, but its
  delivery commitment is captured into an outbox envelope carrying the
  exact arrival timestamp instead of becoming a local event.  The
  ready-bit signal crosses the same way via :class:`_RemotePortStub`.

The coordinator (:mod:`repro.scaleout.runner`) moves envelopes between
partitions and advances each worker under conservative lookahead;
:func:`lookahead_ns` derives that lookahead from the fiber config (see
``docs/SCALEOUT.md`` for the proof sketch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..config import NectarConfig, default_config
from ..datalink.routing import Router
from ..errors import TopologyError
from ..hardware.cab import CabBoard
from ..hardware.fiber import Fiber
from ..hardware.hub import Hub
from ..hardware.wiring import wire_cab_to_hub, wire_hub_to_hub
from ..sim import Simulator, Tracer
from ..system.builder import CabStack
from ..topology.fabrics import FabricSpec
from .wire import KIND_READY, decode_item, encode_item, kind_of

__all__ = ["Envelope", "Partitioning", "PartitionSystem",
           "lookahead_matrix", "lookahead_ns", "partition_fabric"]


#: One cross-partition delivery: ``(arrival, seq, kind, dst_hub,
#: dst_port, item, wire_size)``.  ``seq`` is the sender-side capture
#: order; the coordinator sorts merged batches by ``(arrival,
#: src_partition, seq)`` so injection order is deterministic.
Envelope = tuple


def lookahead_ns(cfg: NectarConfig) -> int:
    """The conservative lookahead for ``cfg``, in simulated ns.

    Every cross-partition interaction crosses an inter-HUB fiber, and the
    earliest-arriving one is the ready-bit signal, which lands after
    exactly ``propagation_ns`` (packet heads add one byte time on top;
    replies add a full serialisation).  A message committed at time ``t``
    therefore arrives no earlier than ``t + propagation_ns``, which is
    what lets the coordinator advance every partition through a window of
    that width without waiting on its neighbours.
    """
    lookahead = cfg.fiber.propagation_ns
    if lookahead < 1:
        raise TopologyError(
            "scale-out needs fiber propagation_ns >= 1 for lookahead")
    return lookahead


def lookahead_matrix(partitioning: "Partitioning",
                     cfg: NectarConfig) -> list[list[int]]:
    """Per-ordered-pair lookahead: ``matrix[src][dst]`` simulated ns.

    The global :func:`lookahead_ns` is the worst case over the whole
    fiber plant; this matrix is the per-*boundary* refinement.  For each
    partition pair the direct bound is the minimum latency of any fiber
    actually crossing that cut (today every fiber in a config shares
    ``propagation_ns``, so each crossed cut contributes the same base —
    the ``min()`` is the seam where per-link latencies drop in).  Pairs
    with no direct cut link are bounded through the partition graph's
    shortest path: a signal from ``src`` must transit intermediate
    partitions, paying each cut's lookahead along the way, so
    well-separated slices see a *wider* horizon than the global minimum
    and the coordinator can grant them correspondingly larger windows.

    The diagonal carries the shortest *feedback cycle*
    ``min over j != i of (matrix[i][j] + matrix[j][i])``: the earliest a
    signal committed in partition ``i`` can cause an effect back in
    ``i`` via some other partition.  A batched coordinator needs this
    term — inside one multi-window grant, a neighbour can *react* to
    ``i``'s own sends, so ``i``'s horizon is bounded by its own trigger
    time plus the round trip, not just by the other partitions'
    triggers.  Every fabric is connected, so every entry is finite.
    """
    count = partitioning.num_partitions
    base = lookahead_ns(cfg)
    owners = partitioning.owner_map()
    infinity = float("inf")
    dist: list[list[Any]] = [[infinity] * count for _ in range(count)]
    for index in range(count):
        dist[index][index] = 0
    for hub_a, _pa, hub_b, _pb in partitioning.cut_links():
        src, dst = owners[hub_a], owners[hub_b]
        # Minimum fiber latency crossing this cut, in either direction
        # (every cut link is a bidirectional fiber pair).
        if base < dist[src][dst]:
            dist[src][dst] = base
            dist[dst][src] = base
    for via in range(count):
        row_via = dist[via]
        for src in range(count):
            through = dist[src][via]
            if through == infinity:
                continue
            row_src = dist[src]
            for dst in range(count):
                candidate = through + row_via[dst]
                if candidate < row_src[dst]:
                    row_src[dst] = candidate
    for src in range(count):
        for dst in range(count):
            if src != dst and dist[src][dst] == infinity:
                raise TopologyError(
                    f"partition {src} cannot reach partition {dst}; "
                    f"the fabric is disconnected")
    for index in range(count):
        # Any closed walk leaves through some partition ``via`` and
        # comes back, so the shortest-path sum is both a lower bound
        # and achievable.
        dist[index][index] = min(
            (dist[index][via] + dist[via][index]
             for via in range(count) if via != index),
            default=0)
    return [[int(value) for value in row] for row in dist]


@dataclass(frozen=True)
class Partitioning:
    """An assignment of every fabric hub to exactly one partition."""

    fabric: FabricSpec
    parts: tuple[tuple[str, ...], ...]

    @property
    def num_partitions(self) -> int:
        return len(self.parts)

    def owner_map(self) -> dict[str, int]:
        """Hub name -> owning partition index."""
        owners: dict[str, int] = {}
        for index, hubs in enumerate(self.parts):
            for hub in hubs:
                owners[hub] = index
        return owners

    def cut_links(self) -> tuple[tuple[str, int, str, int], ...]:
        """The fabric links whose endpoints live in different partitions."""
        owners = self.owner_map()
        return tuple(link for link in self.fabric.links
                     if owners[link[0]] != owners[link[2]])

    def validate(self) -> None:
        """Raise :class:`TopologyError` unless this is a true partition."""
        owners = self.owner_map()
        if not self.parts or any(not part for part in self.parts):
            raise TopologyError("every partition needs at least one hub")
        if set(owners) != set(self.fabric.hubs) \
                or sum(len(p) for p in self.parts) != len(self.fabric.hubs):
            raise TopologyError(
                "partitions must cover every hub exactly once")


def partition_fabric(fabric: FabricSpec, num_partitions: int) -> Partitioning:
    """Cut ``fabric`` into ``num_partitions`` contiguous hub slices.

    Hubs are assigned in construction order, which the regular-fabric
    builders lay out so that consecutive hubs are topologically close
    (row-major torus coordinates, hypercube index order, fat-tree
    core/agg/edge grouping) — contiguous slices therefore cut few links.
    Slice sizes differ by at most one hub.
    """
    count = len(fabric.hubs)
    if not 1 <= num_partitions <= count:
        raise TopologyError(
            f"cannot cut {count} hubs into {num_partitions} partitions")
    base, extra = divmod(count, num_partitions)
    parts = []
    start = 0
    for index in range(num_partitions):
        size = base + (1 if index < extra else 0)
        parts.append(tuple(fabric.hubs[start:start + size]))
        start += size
    partitioning = Partitioning(fabric=fabric, parts=tuple(parts))
    partitioning.validate()
    return partitioning


class _HubProxy:
    """A remote hub as seen by this partition: a name, nothing else.

    The router, datalink command builder, and reply-path codec only ever
    read ``.name`` from hubs they do not switch packets through, so this
    is all a partition needs to know about the rest of the fabric.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<_HubProxy {self.name}>"


class _BoundaryFiber(Fiber):
    """The transmit side of a cut link: capture instead of deliver.

    Serialisation, cut-through timing, fault injection, and statistics
    are all inherited unchanged — the only difference is that the moment
    the base class would schedule the far-end delivery, the item is
    sealed into an outbox envelope stamped with that same arrival time.
    """

    def __init__(self, *args: Any, outbox: "PartitionSystem",
                 dst_hub: str, dst_port: int, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._outbox = outbox
        self._dst_hub = dst_hub
        self._dst_port = dst_port

    def _schedule_delivery(self, latency: int, item: Any, size: int) -> None:
        self._outbox.capture(self.sim.now + latency, kind_of(item),
                             self._dst_hub, self._dst_port,
                             encode_item(item), size)


class _RemotePortStub:
    """Stands in as ``port.peer`` for the far end of a cut link.

    Carries the remote hub/port identity and captures the ready-bit
    signal (:meth:`schedule_notify_ready`, duck-typed by
    :meth:`~repro.hardware.hub_port.HubPort._signal_upstream_drained`)
    into the partition outbox.
    """

    __slots__ = ("_outbox", "hub_name", "port_index", "sim")

    def __init__(self, outbox: "PartitionSystem", sim: Simulator,
                 hub_name: str, port_index: int) -> None:
        self._outbox = outbox
        self.sim = sim
        self.hub_name = hub_name
        self.port_index = port_index

    def schedule_notify_ready(self, delay: int) -> None:
        self._outbox.capture(self.sim.now + delay, KIND_READY,
                             self.hub_name, self.port_index, None, 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<_RemotePortStub {self.hub_name}.p{self.port_index}>"


class PartitionSystem:
    """One partition's hardware plus its cross-partition mailboxes.

    Duck-types the slice of :class:`~repro.system.NectarSystem` that
    :class:`~repro.system.builder.CabStack` and scenario drivers use:
    ``cfg``, ``sim``, ``tracer``, ``router``, ``hubs``, ``cabs``,
    ``cab()``, ``run()``, ``now``.
    """

    def __init__(self, partitioning: Partitioning, index: int,
                 cfg: Optional[NectarConfig] = None) -> None:
        partitioning.validate()
        if not 0 <= index < partitioning.num_partitions:
            raise TopologyError(f"no partition {index} in {partitioning}")
        self.partitioning = partitioning
        self.index = index
        self.cfg = cfg or default_config()
        fabric = partitioning.fabric
        fabric.validate(self.cfg.hub.num_ports)
        self.sim = Simulator()
        self.tracer = Tracer(self.sim, enabled=False)
        self.router = Router()
        self.hubs: dict[str, Hub] = {}
        self._proxies: dict[str, _HubProxy] = {}
        self.cabs: dict[str, CabStack] = {}
        self._outbox: list[Envelope] = []
        self._seq = 0

        local = set(partitioning.parts[index])
        owners = partitioning.owner_map()
        every: dict[str, Any] = {}
        for name in fabric.hubs:
            if name in local:
                hub = Hub(self.sim, name, self.cfg.hub, self.cfg.fiber,
                          tracer=self.tracer)
                self.hubs[name] = hub
                every[name] = hub
            else:
                proxy = _HubProxy(name)
                self._proxies[name] = proxy
                every[name] = proxy
            self.router.add_hub(every[name])

        for hub_a, port_a, hub_b, port_b in fabric.links:
            # The router learns the *whole* fabric graph (names only), so
            # routes match the single-process system; real fibers exist
            # only where at least one endpoint is local.
            self.router.add_link(every[hub_a], port_a, every[hub_b], port_b)
            a_local, b_local = hub_a in local, hub_b in local
            if a_local and b_local:
                wire_hub_to_hub(self.sim, self.hubs[hub_a], port_a,
                                self.hubs[hub_b], port_b,
                                rng_factory=self.cfg.rng_stream)
            elif a_local:
                self._wire_boundary(hub_a, port_a, hub_b, port_b)
            elif b_local:
                self._wire_boundary(hub_b, port_b, hub_a, port_a)

        for cab_name, hub_name, port in fabric.cabs:
            self.router.add_cab(cab_name, every[hub_name], port)
            if hub_name not in local:
                continue
            hub = self.hubs[hub_name]
            board = CabBoard(self.sim, cab_name, self.cfg.cab,
                             self.cfg.fiber)
            wire_cab_to_hub(self.sim, board, hub, port,
                            rng_factory=self.cfg.rng_stream)
            self.cabs[cab_name] = CabStack(self, board)
        self.neighbour_partitions = tuple(sorted(
            {owners[a] for a, _pa, b, _pb in partitioning.cut_links()
             if b in local}
            | {owners[b] for a, _pa, b, _pb in partitioning.cut_links()
               if a in local}))

    def _wire_boundary(self, local_hub: str, local_port: int,
                       remote_hub: str, remote_port: int) -> None:
        """Give the local half of a cut link its capture-side plumbing."""
        port = self.hubs[local_hub].port(local_port)
        name = f"{local_hub}.p{local_port}->{remote_hub}.p{remote_port}"
        # Same fiber name as wire_hub_to_hub builds, hence the same
        # seed-derived fault RNG stream as the single-process run.
        port.out_fiber = _BoundaryFiber(
            self.sim, self.cfg.fiber, name, self.cfg.rng_stream(name),
            outbox=self, dst_hub=remote_hub, dst_port=remote_port)
        port.peer = _RemotePortStub(self, self.sim, remote_hub, remote_port)

    # ------------------------------------------------------------------
    # cross-partition mailboxes
    # ------------------------------------------------------------------

    def capture(self, arrival: int, kind: str, dst_hub: str, dst_port: int,
                item: Any, size: int) -> None:
        """Seal one outbound delivery into the current round's outbox."""
        self._outbox.append((arrival, self._seq, kind, dst_hub, dst_port,
                             item, size))
        self._seq += 1

    def drain_outbox(self) -> list[Envelope]:
        """Hand the round's captured envelopes to the coordinator."""
        drained, self._outbox = self._outbox, []
        return drained

    def inject(self, envelopes: list[Envelope]) -> None:
        """Schedule deliveries received from other partitions.

        Arrivals are strictly in this partition's future: a message
        committed at ``t`` in some round arrives at ``t + lookahead`` at
        the earliest, past that round's window end (see
        :func:`lookahead_ns`), so ``call_at`` never lands in the past.
        """
        for arrival, _seq, kind, dst_hub, dst_port, item, size in envelopes:
            port = self.hubs[dst_hub].port(dst_port)
            if kind == KIND_READY:
                self.sim.call_at(arrival, port.notify_ready)
            else:
                decoded = decode_item(item, self._resolve)
                self.sim.call_at(
                    arrival,
                    lambda p=port, i=decoded, s=size: p.deliver(i, s))

    def _resolve(self, name: str) -> Any:
        hub = self.hubs.get(name)
        return hub if hub is not None else self._proxies[name]

    # ------------------------------------------------------------------
    # partition-aware fault injection
    # ------------------------------------------------------------------

    def attach_faults(self, scenario: Any) -> Any:
        """Apply this partition's slice of a fault campaign.

        Every worker receives the *same*
        :class:`~repro.faults.FaultScenario` (campaigns are built from
        ``cfg.rng_stream``, so each process derives the identical
        schedule); the injector runs in non-strict mode so events whose
        targets live in other partitions are skipped here and applied
        there.  Fault overlays key their RNG streams off fiber names,
        and boundary fibers reuse the exact single-process names, so the
        faulted partitioned run stays digest-identical to the faulted
        single-process run.
        """
        from ..faults.injector import FaultInjector
        injector = FaultInjector(self, scenario, strict=False)
        injector.start()
        self.fault_injector = injector
        return injector

    # ------------------------------------------------------------------
    # NectarSystem duck-type surface
    # ------------------------------------------------------------------

    def cab(self, name: str) -> CabStack:
        try:
            return self.cabs[name]
        except KeyError:
            raise TopologyError(
                f"CAB {name!r} is not in partition {self.index}") from None

    def run(self, until: Optional[int] = None) -> int:
        return self.sim.run(until=until)

    def peek(self) -> Optional[int]:
        """Timestamp of this partition's next local event, if any."""
        return self.sim.peek()

    @property
    def now(self) -> int:
        return self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<PartitionSystem {self.index}/"
                f"{self.partitioning.num_partitions} "
                f"hubs={len(self.hubs)} cabs={len(self.cabs)}>")
