"""Run shapes for E-SCL scenarios: single-process and supervised.

``run_single`` executes an E-SCL scenario in one process, exactly like
every other experiment in the repo — it is the reference every digest
is compared against.  ``run_partitioned`` shards the same scenario
across ``num_partitions`` worker processes under the crash-tolerant
coordinator in :mod:`repro.scaleout.supervisor`, which drives the
conservative-lookahead barrier protocol:

1. Every worker reports its next local event time and flushes its
   outbox of captured cross-partition envelopes.
2. The coordinator computes the global horizon ``N`` — the minimum over
   all reported next-event times and all undelivered envelope arrivals —
   and the window end ``W = N + L - 1``, where ``L`` is the fiber
   propagation lookahead (:func:`~repro.scaleout.partition.lookahead_ns`).
3. Envelopes arriving at or before ``W`` are routed to their owning
   partitions (sorted by ``(arrival, source partition, capture seq)`` so
   injection order is deterministic), and every worker advances to ``W``.

Any message committed during a round happens at ``t >= N`` and arrives
at ``t + L > W``, so no envelope can land inside the window that
produced it — each round is causally closed, and each new horizon is
strictly later than the last window, so the loop always progresses.
The run terminates when every worker is idle and no envelopes remain.

The supervisor generalizes step 2: with ``batch=k`` it grants each
worker up to ``k`` lookahead-widths per round (bounded by per-boundary
horizons from :func:`~repro.scaleout.partition.lookahead_matrix`),
collapsing ``k`` classic rounds into one exchange; ``batch=1`` with a
uniform fabric reproduces the windows above exactly.  See
``docs/SCALEOUT.md`` ("Batched windows") for the soundness argument.

On top of the protocol, the supervisor recovers dead or hung workers by
respawn + window-log replay (bounded restarts, exponential backoff) and
can apply fault campaigns — both in-simulation overlays, sliced per
partition, and process-level ``kill_worker`` chaos.  Failures past the
restart budget surface as :class:`~repro.errors.ScaleoutError` with
per-partition forensics.

The digest of a partitioned run is asserted bit-identical to the
single-process digest by ``verify`` (the CI scale-out smoke), which is
the whole protocol's correctness witness: see ``docs/SCALEOUT.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..topology.fabrics import build_system
from .escl import (ScaleoutScenario, fingerprint_digest, merge_fragments,
                   scenarios, spawn_traffic)
from .supervisor import Supervisor

__all__ = ["ScaleoutResult", "run_partitioned", "run_single", "verify"]


@dataclass
class ScaleoutResult:
    """One run's outcome: determinism digest plus throughput numbers."""

    scenario: str
    partitions: int
    events: int
    sim_ns: int
    wall_s: float
    rounds: int
    envelopes: int
    fingerprint: dict[str, Any] = field(default_factory=dict)
    #: Worker processes respawned after crash/hang/exception.
    restarts: int = 0
    #: Advance windows resent during window-log replay.
    replayed_windows: int = 0
    #: Workers SIGKILLed by chaos (``kill_worker``) campaign events.
    worker_kills: int = 0
    #: One-time startup cost — worker fork + fabric build (partitioned)
    #: or fabric build + traffic spawn (single-process).  Kept out of
    #: ``wall_s`` so ``events_per_sec`` measures steady-state work.
    setup_s: float = 0.0
    #: Advance messages actually sent (idle workers are elided per
    #: round, so this can be well below ``rounds * partitions``).
    advances: int = 0
    #: Per-partition ``{"compute_s": [...], "wait_s": [...],
    #: "exchange_s": [...]}`` round-timing breakdown (empty for
    #: single-process runs).
    timing: dict[str, list[float]] = field(default_factory=dict)

    @property
    def digest(self) -> str:
        """Bit-identity contract: equal across partition counts."""
        return fingerprint_digest(self.scenario, self.fingerprint)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def goodput_mbps(self) -> float:
        """Delivered payload bits per simulated time, in Mbit/s."""
        delivered_bits = 8 * sum(
            self.fingerprint.get("delivered", {}).get(cab, 0) * size
            for cab, size in self._receiver_sizes())
        horizon = max(self.fingerprint.get("done_ns", {}).values(),
                      default=0)
        return delivered_bits / horizon * 1000 if horizon else 0.0

    def _receiver_sizes(self):
        scenario = scenarios()[self.scenario]
        names = scenario.fabric.cab_names
        count = len(names)
        for index, name in enumerate(names):
            sender = (index - count // 2) % count
            yield name, scenario.sender_bytes(sender)

    def summary(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "partitions": self.partitions,
            "events": self.events,
            "sim_ns": self.sim_ns,
            "wall_s": round(self.wall_s, 6),
            "setup_s": round(self.setup_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "goodput_mbps": round(self.goodput_mbps, 3),
            "rounds": self.rounds,
            "advances": self.advances,
            "envelopes": self.envelopes,
            "restarts": self.restarts,
            "replayed_windows": self.replayed_windows,
            "worker_kills": self.worker_kills,
            "digest": self.digest,
        }


def run_single(scenario: ScaleoutScenario,
               faults=None) -> ScaleoutResult:
    """Run the scenario in-process; the reference for every digest.

    ``faults`` (a :class:`~repro.faults.FaultScenario`) applies the
    campaign's in-simulation events through a strict
    :class:`~repro.faults.FaultInjector`; process-level events
    (``kill_worker``) are meaningless here and silently dropped — there
    are no worker processes to kill.
    """
    setup_start = time.perf_counter()
    system = build_system(scenario.fabric, scenario.config())
    if faults is not None:
        sim_faults, _process_events = faults.split_process_events()
        if sim_faults.events:
            from ..faults.injector import FaultInjector
            FaultInjector(system, sim_faults).start()
    traffic = spawn_traffic(scenario, system)
    start = time.perf_counter()
    system.run()
    wall = time.perf_counter() - start
    fingerprint = merge_fragments([traffic.fragment()])
    return ScaleoutResult(scenario.name, 1, system.sim.events_processed,
                          system.now, wall, rounds=0, envelopes=0,
                          fingerprint=fingerprint,
                          setup_s=start - setup_start)


def run_partitioned(scenario: ScaleoutScenario, num_partitions: int, *,
                    faults=None, max_restarts: int = 2,
                    hang_timeout_s: float = 600.0,
                    backoff_base_s: float = 0.05,
                    snapshot_every: int = 0,
                    batch: int = 8, transport: str = "shm",
                    registry=None) -> ScaleoutResult:
    """Run the scenario sharded across ``num_partitions`` processes.

    Delegates to the crash-tolerant :class:`Supervisor`: workers that
    crash, hang, or get SIGKILLed by a chaos campaign are respawned and
    replayed from the window log, up to ``max_restarts`` times per
    partition, after which :class:`~repro.errors.ScaleoutError` carries
    the per-partition forensics.  ``batch`` is the budget of
    lookahead-widths granted per barrier round (1 = the classic
    window-per-round protocol) and ``transport`` selects how envelope
    blocks travel (``"shm"`` ring buffers or the plain ``"pipe"``); both
    leave the digest bit-identical.  ``registry`` (a
    :class:`~repro.observe.MetricRegistry`) mirrors the recovery
    counters plus the per-partition round-timing breakdown as
    ``scaleout.*`` metrics.
    """
    if num_partitions < 2:
        return run_single(scenario, faults=faults)
    supervisor = Supervisor(
        scenario, num_partitions, faults=faults,
        max_restarts=max_restarts, hang_timeout_s=hang_timeout_s,
        backoff_base_s=backoff_base_s, snapshot_every=snapshot_every,
        batch=batch, transport=transport, registry=registry)
    outcome = supervisor.run()
    return ScaleoutResult(
        scenario.name, num_partitions, outcome.events, outcome.sim_ns,
        outcome.wall_s, rounds=outcome.rounds,
        envelopes=outcome.envelopes,
        fingerprint=merge_fragments(outcome.fragments),
        restarts=outcome.restarts,
        replayed_windows=outcome.replayed_windows,
        worker_kills=outcome.worker_kills,
        setup_s=outcome.setup_s, advances=outcome.advances,
        timing=outcome.timing)


def verify(scenario: ScaleoutScenario,
           partition_counts: tuple[int, ...] = (2,),
           faults=None, **run_kwargs) -> ScaleoutResult:
    """Assert every partitioned digest matches the single-process one.

    Returns the single-process result (the reference).  Raises
    ``AssertionError`` on the first mismatch — this is the hard digest
    gate the CI scale-out smoke and the E-SCL benchmark both call.

    With ``faults``, both run shapes apply the same campaign and the
    digests must still match; the *event-count* gate only applies to
    clean runs, because in-sim fault driver processes spawn once per
    partition holding a matched target (vs once in the single-process
    run), so raw event totals legitimately differ under faults.
    """
    reference = run_single(scenario, faults=faults)
    sim_faulted = False
    if faults is not None:
        sim_faulted = bool(faults.split_process_events()[0].events)
    for count in partition_counts:
        result = run_partitioned(scenario, count, faults=faults,
                                 **run_kwargs)
        if result.digest != reference.digest:
            raise AssertionError(
                f"{scenario.name}: {count}-partition digest "
                f"{result.digest} != single-process {reference.digest}")
        if not sim_faulted and result.events != reference.events:
            raise AssertionError(
                f"{scenario.name}: {count}-partition run processed "
                f"{result.events} events, single-process "
                f"{reference.events}")
    return reference
