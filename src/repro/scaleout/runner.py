"""The conservative-lookahead coordinator and its worker processes.

``run_single`` executes an E-SCL scenario in one process, exactly like
every other experiment in the repo.  ``run_partitioned`` shards the same
scenario across ``num_partitions`` worker processes (one
:class:`~repro.scaleout.partition.PartitionSystem` each, fork-started)
and synchronizes them in barrier rounds over pipes:

1. Every worker reports its next local event time and flushes its
   outbox of captured cross-partition envelopes.
2. The coordinator computes the global horizon ``N`` — the minimum over
   all reported next-event times and all undelivered envelope arrivals —
   and the window end ``W = N + L - 1``, where ``L`` is the fiber
   propagation lookahead (:func:`~repro.scaleout.partition.lookahead_ns`).
3. Envelopes arriving at or before ``W`` are routed to their owning
   partitions (sorted by ``(arrival, source partition, capture seq)`` so
   injection order is deterministic), and every worker advances to ``W``.

Any message committed during a round happens at ``t >= N`` and arrives
at ``t + L > W``, so no envelope can land inside the window that
produced it — each round is causally closed, and each new horizon is
strictly later than the last window, so the loop always progresses.
The run terminates when every worker is idle and no envelopes remain.

The digest of a partitioned run is asserted bit-identical to the
single-process digest by ``verify`` (the CI scale-out smoke), which is
the whole protocol's correctness witness: see ``docs/SCALEOUT.md``.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..topology.fabrics import build_system
from .escl import (ScaleoutScenario, fingerprint_digest, merge_fragments,
                   scenarios, spawn_traffic)
from .partition import PartitionSystem, lookahead_ns, partition_fabric

__all__ = ["ScaleoutResult", "run_partitioned", "run_single", "verify"]

#: Seconds the coordinator waits on a worker before declaring it hung.
_WORKER_TIMEOUT_S = 600.0


@dataclass
class ScaleoutResult:
    """One run's outcome: determinism digest plus throughput numbers."""

    scenario: str
    partitions: int
    events: int
    sim_ns: int
    wall_s: float
    rounds: int
    envelopes: int
    fingerprint: dict[str, Any] = field(default_factory=dict)

    @property
    def digest(self) -> str:
        """Bit-identity contract: equal across partition counts."""
        return fingerprint_digest(self.scenario, self.fingerprint)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def goodput_mbps(self) -> float:
        """Delivered payload bits per simulated time, in Mbit/s."""
        delivered_bits = 8 * sum(
            self.fingerprint.get("delivered", {}).get(cab, 0) * size
            for cab, size in self._receiver_sizes())
        horizon = max(self.fingerprint.get("done_ns", {}).values(),
                      default=0)
        return delivered_bits / horizon * 1000 if horizon else 0.0

    def _receiver_sizes(self):
        scenario = scenarios()[self.scenario]
        names = scenario.fabric.cab_names
        count = len(names)
        for index, name in enumerate(names):
            sender = (index - count // 2) % count
            yield name, scenario.sender_bytes(sender)

    def summary(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "partitions": self.partitions,
            "events": self.events,
            "sim_ns": self.sim_ns,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "goodput_mbps": round(self.goodput_mbps, 3),
            "rounds": self.rounds,
            "envelopes": self.envelopes,
            "digest": self.digest,
        }


def run_single(scenario: ScaleoutScenario) -> ScaleoutResult:
    """Run the scenario in-process; the reference for every digest."""
    system = build_system(scenario.fabric, scenario.config())
    traffic = spawn_traffic(scenario, system)
    start = time.perf_counter()
    system.run()
    wall = time.perf_counter() - start
    fingerprint = merge_fragments([traffic.fragment()])
    return ScaleoutResult(scenario.name, 1, system.sim.events_processed,
                          system.now, wall, rounds=0, envelopes=0,
                          fingerprint=fingerprint)


def _worker_main(conn, scenario_name: str, num_partitions: int,
                 index: int) -> None:
    """Worker process: one partition, advanced in coordinator windows."""
    scenario = scenarios()[scenario_name]
    partitioning = partition_fabric(scenario.fabric, num_partitions)
    system = PartitionSystem(partitioning, index, scenario.config())
    traffic = spawn_traffic(scenario, system)
    conn.send(("state", system.peek(), system.drain_outbox(),
               system.sim.events_processed))
    while True:
        message = conn.recv()
        if message[0] == "advance":
            _tag, window, envelopes = message
            system.inject(envelopes)
            system.run(until=window)
            conn.send(("state", system.peek(), system.drain_outbox(),
                       system.sim.events_processed))
        elif message[0] == "finish":
            conn.send(("result", traffic.fragment(),
                       system.sim.events_processed, system.now))
            conn.close()
            return
        else:  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unknown coordinator message {message[0]!r}")


def _recv(conn):
    if not conn.poll(_WORKER_TIMEOUT_S):
        raise TimeoutError("scale-out worker did not answer; "
                           "coordinator giving up")
    return conn.recv()


def run_partitioned(scenario: ScaleoutScenario,
                    num_partitions: int) -> ScaleoutResult:
    """Run the scenario sharded across ``num_partitions`` processes."""
    if num_partitions < 2:
        return run_single(scenario)
    partitioning = partition_fabric(scenario.fabric, num_partitions)
    owners = partitioning.owner_map()
    lookahead = lookahead_ns(scenario.config())
    ctx = mp.get_context("fork")
    pipes, workers = [], []
    for index in range(num_partitions):
        parent, child = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(child, scenario.name, num_partitions, index),
            name=f"scaleout-{scenario.name}-p{index}", daemon=True)
        pipes.append(parent)
        workers.append(process)
    rounds = 0
    total_envelopes = 0
    try:
        for process in workers:
            process.start()
        peeks: list[Optional[int]] = [None] * num_partitions
        #: Per destination partition: (arrival, src, seq, envelope).
        pending: list[list[tuple]] = [[] for _ in range(num_partitions)]

        def absorb(src: int, state) -> None:
            nonlocal total_envelopes
            _tag, peek, outbox, _events = state
            peeks[src] = peek
            total_envelopes += len(outbox)
            for envelope in outbox:
                destination = owners[envelope[3]]
                pending[destination].append(
                    (envelope[0], src, envelope[1], envelope))

        start = time.perf_counter()
        for src, conn in enumerate(pipes):
            absorb(src, _recv(conn))
        while True:
            candidates = [peek for peek in peeks if peek is not None]
            candidates.extend(entry[0] for batch in pending
                              for entry in batch)
            if not candidates:
                break
            window = min(candidates) + lookahead - 1
            rounds += 1
            for index, conn in enumerate(pipes):
                batch = sorted(entry for entry in pending[index]
                               if entry[0] <= window)
                pending[index] = [entry for entry in pending[index]
                                  if entry[0] > window]
                conn.send(("advance", window,
                           [entry[3] for entry in batch]))
            for src, conn in enumerate(pipes):
                absorb(src, _recv(conn))
        for conn in pipes:
            conn.send(("finish",))
        fragments, events, sim_ns = [], 0, 0
        for conn in pipes:
            _tag, fragment, worker_events, worker_now = _recv(conn)
            fragments.append(fragment)
            events += worker_events
            sim_ns = max(sim_ns, worker_now)
        wall = time.perf_counter() - start
        for process in workers:
            process.join(timeout=30)
    finally:
        for process in workers:
            if process.is_alive():  # pragma: no cover - error cleanup
                process.terminate()
    fingerprint = merge_fragments(fragments)
    return ScaleoutResult(scenario.name, num_partitions, events, sim_ns,
                          wall, rounds=rounds, envelopes=total_envelopes,
                          fingerprint=fingerprint)


def verify(scenario: ScaleoutScenario,
           partition_counts: tuple[int, ...] = (2,)) -> ScaleoutResult:
    """Assert every partitioned digest matches the single-process one.

    Returns the single-process result (the reference).  Raises
    ``AssertionError`` on the first mismatch — this is the hard digest
    gate the CI scale-out smoke and the E-SCL benchmark both call.
    """
    reference = run_single(scenario)
    for count in partition_counts:
        result = run_partitioned(scenario, count)
        if result.digest != reference.digest:
            raise AssertionError(
                f"{scenario.name}: {count}-partition digest "
                f"{result.digest} != single-process {reference.digest}")
        if result.events != reference.events:
            raise AssertionError(
                f"{scenario.name}: {count}-partition run processed "
                f"{result.events} events, single-process "
                f"{reference.events}")
    return reference
