"""The crash-tolerant scale-out coordinator: supervised workers.

The plain coordinator in :mod:`repro.scaleout.runner` assumed every
worker answers every barrier round; one SIGKILL'd process stalled the
run for the full pipe timeout and then aborted it.  This module replaces
that loop with a :class:`Supervisor` that treats worker death as a
recoverable event:

* **Multiplexed waits.**  Worker pipes *and* process sentinels are
  watched together via :func:`multiprocessing.connection.wait`, with a
  per-worker heartbeat deadline — a crash is detected the moment the
  kernel reaps the child (sentinel/EOF, with the exit code recorded),
  and a hang is detected when the deadline lapses, so the two failure
  modes are distinguished in the forensics instead of both surfacing as
  an anonymous ``TimeoutError`` minutes later.

* **Window-log replay.**  A partitioned worker is a deterministic pure
  function of ``(scenario, partition index, the sequence of coordinator
  messages)``: same seed, same envelope batches, same state — that is
  the bit-identity contract ``verify`` asserts.  The supervisor
  therefore keeps, per partition, the full log of messages sent since
  worker start.  When a worker dies, a fresh process is spawned for the
  same partition and the log is replayed to reconstruct bit-identical
  state.  Responses to already-acknowledged positions are discarded
  (their envelopes were already routed — replay makes them
  deterministic duplicates); the at-most-one unacknowledged response is
  absorbed exactly as the dead incarnation's answer would have been.
  Restarts are bounded (``max_restarts`` per partition) with
  exponential backoff between attempts.

* **Snapshot verification.**  True log compaction is impossible here:
  worker state lives in Python generator frames (the kernel threads on
  the simulator agenda), which cannot pickle, so there is no checkpoint
  to restart from and the log is never truncated.  What the ``snapshot``
  command *can* do is pickle the worker's fragment-so-far; the
  supervisor records its digest per log position and, during replay,
  hard-checks that the respawned worker reproduces every recorded
  snapshot byte-for-byte — a replay-fidelity witness, and fragment
  forensics for post-mortems.

* **Graceful degradation.**  When a partition exhausts its restart
  budget the supervisor reaps every worker (terminate, then SIGKILL,
  then fail loudly if a process leaks) and raises a structured
  :class:`~repro.errors.ScaleoutError` carrying per-partition forensics:
  last window reached, events processed, restart count, exit codes, and
  the full failure history.

* **Partition-aware faults.**  A :class:`~repro.faults.FaultScenario`
  can ride along: its in-simulation events are handed to *every* worker
  verbatim (each applies the slice whose targets it materialized
  locally, via the injector's non-strict mode), so a faulted
  partitioned run stays digest-identical to the faulted single-process
  run; its process-level ``kill_worker`` events are applied by the
  supervisor itself, SIGKILLing live workers mid-run to exercise the
  recovery path end-to-end (``scaleout --chaos``).

See ``docs/SCALEOUT.md`` ("Fault tolerance") for the recovery-soundness
argument.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
import multiprocessing as mp
from fnmatch import fnmatchcase
from typing import Any, Optional

from ..errors import ScaleoutError
from ..faults.campaigns import build_campaign
from ..faults.scenario import FaultEvent, FaultScenario
from .escl import (ScaleoutScenario, fingerprint_digest, scenarios,
                   spawn_traffic)
from .partition import PartitionSystem, lookahead_ns, partition_fabric

__all__ = ["Supervisor", "SupervisorOutcome", "escl_campaign"]

#: Hard ceiling on the exponential restart backoff (seconds).
_BACKOFF_CAP_S = 2.0
#: Seconds granted to each escalation step when reaping a worker.
_REAP_STEP_S = 5.0

#: E-SCL runs finish within a few hundred microseconds of simulated
#: time (vs the default workload's milliseconds), so campaigns need
#: windows placed inside that span to fire at all.
_ESCL_CAMPAIGN_DEFAULTS: dict[str, dict[str, int]] = {
    "drop-burst": {"start_ns": 5_000, "horizon_ns": 150_000,
                   "duration_ns": 30_000},
    "corrupt-burst": {"start_ns": 5_000, "horizon_ns": 150_000,
                      "duration_ns": 30_000},
    "reply-storm": {"start_ns": 5_000, "horizon_ns": 150_000,
                    "duration_ns": 30_000},
    "link-flap": {"start_ns": 5_000, "horizon_ns": 150_000,
                  "duration_ns": 30_000},
    "worker-kill": {"start_ns": 10_000, "horizon_ns": 200_000},
}


def escl_campaign(name: str, cfg, **overrides) -> FaultScenario:
    """Build a named campaign with windows sized for E-SCL runs."""
    params: dict[str, Any] = dict(_ESCL_CAMPAIGN_DEFAULTS.get(name, {}))
    params.update(overrides)
    return build_campaign(name, cfg, **params)


def _worker_main(conn, scenario_name: str, num_partitions: int,
                 index: int, faults_spec: Optional[dict] = None) -> None:
    """Worker process: one partition, advanced in coordinator windows.

    Replies in lock-step to coordinator commands:

    * ``("advance", window, envelopes)`` → inject, run to the window,
      answer ``("state", peek, outbox, events_processed)``.
    * ``("snapshot",)`` → answer ``("snapshot", fragment,
      events_processed, now)`` — the picklable fragment-so-far.
    * ``("finish",)`` → answer ``("result", fragment, events_processed,
      now)`` and exit.

    Any exception is reported as ``("error", traceback_text)`` before
    the worker exits non-zero, so the coordinator sees the worker-side
    stack instead of a silent death.
    """
    try:
        scenario = scenarios()[scenario_name]
        partitioning = partition_fabric(scenario.fabric, num_partitions)
        system = PartitionSystem(partitioning, index, scenario.config())
        if faults_spec is not None:
            system.attach_faults(FaultScenario.from_dict(faults_spec))
        traffic = spawn_traffic(scenario, system)
        conn.send(("state", system.peek(), system.drain_outbox(),
                   system.sim.events_processed))
        while True:
            message = conn.recv()
            if message[0] == "advance":
                _tag, window, envelopes = message
                system.inject(envelopes)
                system.run(until=window)
                conn.send(("state", system.peek(), system.drain_outbox(),
                           system.sim.events_processed))
            elif message[0] == "snapshot":
                conn.send(("snapshot", traffic.fragment(),
                           system.sim.events_processed, system.now))
            elif message[0] == "finish":
                conn.send(("result", traffic.fragment(),
                           system.sim.events_processed, system.now))
                conn.close()
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(
                    f"unknown coordinator message {message[0]!r}")
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
        raise SystemExit(1)


class _WorkerDied(Exception):
    """Internal signal: a worker failed (reason, detail, exit code)."""

    def __init__(self, reason: str, detail: str,
                 exit_code: Optional[int]) -> None:
        super().__init__(detail)
        self.reason = reason
        self.detail = detail
        self.exit_code = exit_code


class _Worker:
    """One partition's process handle plus its replay bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[mp.process.BaseProcess] = None
        self.conn = None
        #: Every message sent since the *first* spawn — the replay log.
        self.log: list[tuple] = []
        #: Responses absorbed so far.  Position 0 is the initial state
        #: report; position ``i >= 1`` answers ``log[i - 1]``.
        self.acked = 0
        #: Wall-clock deadline for the outstanding response, if any.
        self.deadline: Optional[float] = None
        self.restarts = 0
        self.failures: list[dict[str, Any]] = []
        #: Log position -> fragment digest, recorded at ``snapshot``
        #: responses and re-checked during replay.
        self.snapshots: dict[int, str] = {}
        self.advances_since_snapshot = 0
        self.last_window: Optional[int] = None
        self.events = 0
        self.result: Optional[tuple] = None

    @property
    def outstanding(self) -> bool:
        """Is there a request this worker has not answered yet?"""
        return self.acked < 1 + len(self.log)

    def forensics(self) -> dict[str, Any]:
        """Everything the post-mortem needs about this partition."""
        return {
            "partition": self.index,
            "restarts": self.restarts,
            "last_window": self.last_window,
            "acked_responses": self.acked,
            "log_messages": len(self.log),
            "events": self.events,
            "failures": list(self.failures),
        }


@dataclass
class SupervisorOutcome:
    """What a completed supervised run hands back to the runner."""

    fragments: list[dict[str, Any]]
    events: int
    sim_ns: int
    wall_s: float
    rounds: int
    envelopes: int
    restarts: int
    replayed_windows: int
    worker_kills: int
    snapshots_verified: int
    forensics: list[dict[str, Any]] = field(default_factory=list)


class Supervisor:
    """Crash-tolerant barrier-round coordinator for one partitioned run.

    Drives ``num_partitions`` worker processes through the conservative
    lookahead protocol (see :mod:`repro.scaleout.runner`), recovering
    dead or hung workers by respawn + window-log replay.  One instance
    runs one scenario once (:meth:`run`).
    """

    def __init__(self, scenario: ScaleoutScenario, num_partitions: int, *,
                 faults: Optional[FaultScenario] = None,
                 max_restarts: int = 2, hang_timeout_s: float = 600.0,
                 backoff_base_s: float = 0.05, snapshot_every: int = 0,
                 registry=None) -> None:
        if num_partitions < 2:
            raise ScaleoutError(
                "the supervisor coordinates >= 2 workers; "
                "use run_single for one process")
        self.scenario = scenario
        self.num_partitions = num_partitions
        self.max_restarts = max_restarts
        self.hang_timeout_s = hang_timeout_s
        self.backoff_base_s = backoff_base_s
        self.snapshot_every = snapshot_every
        self.partitioning = partition_fabric(scenario.fabric,
                                             num_partitions)
        self.owners = self.partitioning.owner_map()
        self.lookahead = lookahead_ns(scenario.config())
        self.ctx = mp.get_context("fork")
        self.workers = [_Worker(i) for i in range(num_partitions)]
        #: Per destination partition: (arrival, src, seq, envelope).
        self.pending: list[list[tuple]] = [[] for _ in
                                           range(num_partitions)]
        self.peeks: list[Optional[int]] = [None] * num_partitions
        if faults is not None:
            sim_faults, process_events = faults.split_process_events()
            self._faults_spec = (sim_faults.to_dict()
                                 if sim_faults.events else None)
            self._kill_events = process_events
        else:
            self._faults_spec = None
            self._kill_events = []
        self._kills_fired: set[int] = set()
        self.rounds = 0
        self.envelopes = 0
        self.restarts = 0
        self.replayed_windows = 0
        self.worker_kills = 0
        self.snapshots_verified = 0
        self._counters = {}
        if registry is not None:
            self._counters = {
                "restarts": registry.counter(
                    "scaleout.restarts",
                    "worker processes respawned after a failure",
                    unit="restarts"),
                "replayed_windows": registry.counter(
                    "scaleout.replayed_windows",
                    "advance windows resent during log replay",
                    unit="windows"),
                "worker_kills": registry.counter(
                    "scaleout.worker_kills",
                    "workers SIGKILLed by chaos campaign events",
                    unit="kills"),
            }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def run(self) -> SupervisorOutcome:
        """Drive the full protocol; always reaps every worker on exit."""
        start = time.perf_counter()
        try:
            for worker in self.workers:
                self._spawn(worker)
            self._fire_kills(window=0)
            self._collect()
            while True:
                candidates = [p for p in self.peeks if p is not None]
                candidates.extend(entry[0] for batch in self.pending
                                  for entry in batch)
                if not candidates:
                    break
                window = min(candidates) + self.lookahead - 1
                self.rounds += 1
                for worker in self.workers:
                    batch = sorted(e for e in self.pending[worker.index]
                                   if e[0] <= window)
                    self.pending[worker.index] = [
                        e for e in self.pending[worker.index]
                        if e[0] > window]
                    self._send(worker, ("advance", window,
                                        [entry[3] for entry in batch]))
                    worker.last_window = window
                self._fire_kills(window)
                self._collect()
            for worker in self.workers:
                self._send(worker, ("finish",))
            self._collect()
            wall = time.perf_counter() - start
        finally:
            self._reap_all()
        events, sim_ns, fragments = 0, 0, []
        for worker in self.workers:
            _tag, fragment, worker_events, worker_now = worker.result
            fragments.append(fragment)
            events += worker_events
            sim_ns = max(sim_ns, worker_now)
        return SupervisorOutcome(
            fragments=fragments, events=events, sim_ns=sim_ns,
            wall_s=wall, rounds=self.rounds, envelopes=self.envelopes,
            restarts=self.restarts,
            replayed_windows=self.replayed_windows,
            worker_kills=self.worker_kills,
            snapshots_verified=self.snapshots_verified,
            forensics=[w.forensics() for w in self.workers])

    def _spawn(self, worker: _Worker) -> None:
        parent, child = self.ctx.Pipe()
        process = self.ctx.Process(
            target=_worker_main,
            args=(child, self.scenario.name, self.num_partitions,
                  worker.index, self._faults_spec),
            name=(f"scaleout-{self.scenario.name}-p{worker.index}"
                  f"-r{worker.restarts}"),
            daemon=True)
        process.start()
        # Close our copy of the child's pipe end, or EOF never fires.
        child.close()
        worker.process = process
        worker.conn = parent
        worker.deadline = time.monotonic() + self.hang_timeout_s

    # ------------------------------------------------------------------
    # sending and collecting
    # ------------------------------------------------------------------

    def _send(self, worker: _Worker, message: tuple) -> None:
        """Log then send; a broken pipe triggers recovery (which will
        resend the just-logged message as the replay tail)."""
        worker.log.append(message)
        try:
            worker.conn.send(message)
            worker.deadline = time.monotonic() + self.hang_timeout_s
        except (BrokenPipeError, OSError):
            self._recover(worker, "crash",
                          "pipe broke while sending the next command")

    def _collect(self) -> None:
        """Wait until every worker has answered everything sent so far,
        recovering any worker that crashes or misses its deadline."""
        while True:
            lagging = [w for w in self.workers if w.outstanding]
            if not lagging:
                return
            now = time.monotonic()
            expired = [w for w in lagging if w.deadline is not None
                       and now > w.deadline]
            if expired:
                worker = expired[0]
                self._kill_process(worker)
                self._recover(
                    worker, "hang",
                    f"no answer within {self.hang_timeout_s:.1f}s "
                    f"(last window {worker.last_window})")
                continue
            timeout = min(w.deadline for w in lagging
                          if w.deadline is not None) - now
            by_conn = {w.conn: w for w in lagging}
            by_sentinel = {w.process.sentinel: w for w in lagging}
            ready = mp_connection.wait(
                list(by_conn) + list(by_sentinel),
                timeout=max(timeout, 0.001))
            progressed = False
            for obj in ready:
                worker = by_conn.get(obj)
                if worker is None:
                    continue
                progressed = True
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._recover(worker, "crash",
                                  "pipe EOF while awaiting a response")
                    break
                self._handle(worker, message)
                break
            if progressed:
                continue
            for obj in ready:
                worker = by_sentinel.get(obj)
                if worker is None or not worker.outstanding:
                    continue
                # The process is gone, but a complete response may
                # still be buffered in the pipe — drain it first.
                if worker.conn.poll(0):
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        self._recover(worker, "crash",
                                      "worker exited mid-response")
                        break
                    self._handle(worker, message)
                    break
                self._recover(worker, "crash",
                              "worker process exited without answering")
                break

    def _handle(self, worker: _Worker, message: tuple) -> None:
        """Absorb one in-order response from a live worker."""
        tag = message[0]
        if tag == "error":
            self._recover(worker, "exception", message[1])
            return
        position = worker.acked
        entry = None if position == 0 else worker.log[position - 1]
        if tag == "state":
            self._absorb(worker, message)
            worker.acked += 1
            worker.deadline = None
            if entry is not None and entry[0] == "advance":
                worker.advances_since_snapshot += 1
                if self.snapshot_every \
                        and worker.advances_since_snapshot \
                        >= self.snapshot_every:
                    worker.advances_since_snapshot = 0
                    self._send(worker, ("snapshot",))
        elif tag == "snapshot":
            _tag, fragment, events, _now = message
            worker.snapshots[position] = fingerprint_digest(
                self.scenario.name, fragment)
            worker.events = events
            worker.acked += 1
            worker.deadline = None
        elif tag == "result":
            worker.result = message
            worker.events = message[2]
            worker.acked += 1
            worker.deadline = None
        else:  # pragma: no cover - protocol misuse
            raise ScaleoutError(
                f"scale-out {self.scenario.name!r} partition "
                f"{worker.index}: unknown worker response {tag!r}")

    def _absorb(self, worker: _Worker, state: tuple) -> None:
        """Route one state report's envelopes; track peek and events."""
        _tag, peek, outbox, events = state
        self.peeks[worker.index] = peek
        worker.events = events
        self.envelopes += len(outbox)
        for envelope in outbox:
            destination = self.owners[envelope[3]]
            self.pending[destination].append(
                (envelope[0], worker.index, envelope[1], envelope))

    # ------------------------------------------------------------------
    # failure handling: record, respawn, replay
    # ------------------------------------------------------------------

    def _recover(self, worker: _Worker, reason: str, detail: str) -> None:
        """Respawn ``worker`` and replay its log until it is caught up.

        Raises :class:`ScaleoutError` with full forensics once the
        partition's restart budget is exhausted.
        """
        while True:
            self._record_failure(worker, reason, detail)
            self._reap(worker)
            if worker.restarts >= self.max_restarts:
                self._give_up(worker, reason)
            worker.restarts += 1
            self.restarts += 1
            self._bump("restarts")
            delay = min(self.backoff_base_s * (2 ** (worker.restarts - 1)),
                        _BACKOFF_CAP_S)
            time.sleep(delay)
            self._spawn(worker)
            try:
                self._replay(worker)
                return
            except _WorkerDied as died:
                reason, detail = died.reason, died.detail

    def _replay(self, worker: _Worker) -> None:
        """Feed a fresh incarnation the full log, byte-for-byte.

        Responses to positions ``< worker.acked`` are deterministic
        duplicates: their envelopes were already routed, so outboxes are
        discarded and snapshot digests are verified against the record.
        The at-most-one position ``== worker.acked`` is the response the
        dead incarnation never gave; it is absorbed normally.
        """
        message = self._recv_replay(worker)
        if message[0] != "state":  # pragma: no cover - protocol misuse
            raise ScaleoutError(
                f"scale-out {self.scenario.name!r} partition "
                f"{worker.index}: replay expected a state report, "
                f"got {message[0]!r}")
        if worker.acked == 0:
            self._absorb(worker, message)
            worker.acked = 1
        replayed = 0
        # Snapshot the length: absorbing the tail response may append a
        # fresh ("snapshot",) request (already sent by _send) that must
        # not be re-sent by this loop.
        log_len = len(worker.log)
        for position in range(1, log_len + 1):
            entry = worker.log[position - 1]
            try:
                worker.conn.send(entry)
            except (BrokenPipeError, OSError):
                raise _WorkerDied("crash",
                                  "pipe broke during replay",
                                  self._exit_code(worker)) from None
            message = self._recv_replay(worker)
            if entry[0] == "advance":
                replayed += 1
            if message[0] == "error":
                raise _WorkerDied("exception", message[1],
                                  self._exit_code(worker))
            if position < worker.acked:
                if entry[0] == "snapshot":
                    self._verify_snapshot(worker, position, message)
                continue
            # The single unacknowledged position: absorb for real.
            self._handle(worker, message)
        self.replayed_windows += replayed
        self._bump("replayed_windows", replayed)
        worker.deadline = (time.monotonic() + self.hang_timeout_s
                           if worker.outstanding else None)

    def _verify_snapshot(self, worker: _Worker, position: int,
                         message: tuple) -> None:
        """Replay-fidelity hard check: same position, same fragment."""
        digest = fingerprint_digest(self.scenario.name, message[1])
        recorded = worker.snapshots.get(position)
        if recorded is not None and recorded != digest:
            self._reap_all()
            raise ScaleoutError(
                f"scale-out {self.scenario.name!r} partition "
                f"{worker.index}: replay diverged at log position "
                f"{position} (snapshot digest {digest[:16]} != recorded "
                f"{recorded[:16]}); the determinism contract is broken",
                forensics=[w.forensics() for w in self.workers])
        self.snapshots_verified += 1

    def _recv_replay(self, worker: _Worker) -> tuple:
        """One blocking, deadline-guarded receive during replay."""
        deadline = time.monotonic() + self.hang_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill_process(worker)
                raise _WorkerDied(
                    "hang",
                    f"no answer within {self.hang_timeout_s:.1f}s "
                    f"during replay", self._exit_code(worker))
            ready = mp_connection.wait(
                [worker.conn, worker.process.sentinel],
                timeout=remaining)
            if worker.conn in ready or worker.conn.poll(0):
                try:
                    return worker.conn.recv()
                except (EOFError, OSError):
                    raise _WorkerDied(
                        "crash", "pipe EOF during replay",
                        self._exit_code(worker)) from None
            if worker.process.sentinel in ready:
                raise _WorkerDied(
                    "crash", "worker died during replay",
                    self._exit_code(worker))

    def _record_failure(self, worker: _Worker, reason: str,
                        detail: str) -> None:
        worker.failures.append({
            "reason": reason,
            "detail": detail,
            "exit_code": self._exit_code(worker),
            "last_window": worker.last_window,
            "events": worker.events,
            "acked_responses": worker.acked,
        })

    def _give_up(self, worker: _Worker, reason: str) -> None:
        """Budget exhausted: reap everything, raise with forensics."""
        self._reap_all()
        raise ScaleoutError(
            f"scale-out {self.scenario.name!r} partition {worker.index} "
            f"failed ({reason}) and exhausted its restart budget "
            f"({self.max_restarts} restarts); see forensics",
            forensics=[w.forensics() for w in self.workers])

    # ------------------------------------------------------------------
    # process plumbing
    # ------------------------------------------------------------------

    def _exit_code(self, worker: _Worker) -> Optional[int]:
        process = worker.process
        if process is None:
            return None
        process.join(timeout=_REAP_STEP_S)
        return process.exitcode

    def _kill_process(self, worker: _Worker) -> None:
        process = worker.process
        if process is not None and process.is_alive():
            process.kill()

    def _reap(self, worker: _Worker) -> None:
        """Terminate → SIGKILL → fail loudly if the process leaks."""
        process = worker.process
        if process is None:
            return
        process.join(timeout=_REAP_STEP_S)
        if process.is_alive():
            process.terminate()
            process.join(timeout=_REAP_STEP_S)
        if process.is_alive():
            process.kill()
            process.join(timeout=_REAP_STEP_S)
        if process.is_alive():
            raise ScaleoutError(
                f"scale-out {self.scenario.name!r} partition "
                f"{worker.index}: worker pid {process.pid} survived "
                f"terminate and SIGKILL; refusing to leak it silently",
                forensics=[w.forensics() for w in self.workers])
        if worker.conn is not None:
            worker.conn.close()
            worker.conn = None
        worker.process = None

    def _reap_all(self) -> None:
        for worker in self.workers:
            self._kill_process(worker)
        for worker in self.workers:
            self._reap(worker)

    # ------------------------------------------------------------------
    # process-level chaos
    # ------------------------------------------------------------------

    def _fire_kills(self, window: int) -> None:
        """SIGKILL workers matched by due ``kill_worker`` events.

        An event is due once the coordinator window reaches its
        ``at_ns`` (``at_ns <= 0`` fires right after spawn, before the
        first state report).  Each event fires exactly once; whichever
        instant the signal lands, replay restores bit-identical state,
        so the run's digest is unaffected — only the restart counters
        and wall clock change.
        """
        for index, event in enumerate(self._kill_events):
            if index in self._kills_fired or event.at_ns > window:
                continue
            self._kills_fired.add(index)
            for worker in self.workers:
                if not fnmatchcase(str(worker.index), event.target):
                    continue
                process = worker.process
                if process is None or not process.is_alive():
                    continue
                os.kill(process.pid, signal.SIGKILL)
                self.worker_kills += 1
                self._bump("worker_kills")

    def _bump(self, name: str, amount: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is not None and amount > 0:
            counter.inc(amount)
