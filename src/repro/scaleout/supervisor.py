"""The crash-tolerant scale-out coordinator: supervised workers.

The plain coordinator in :mod:`repro.scaleout.runner` assumed every
worker answers every barrier round; one SIGKILL'd process stalled the
run for the full pipe timeout and then aborted it.  This module replaces
that loop with a :class:`Supervisor` that treats worker death as a
recoverable event:

* **Multiplexed waits.**  Worker pipes *and* process sentinels are
  watched together via :func:`multiprocessing.connection.wait`, with a
  per-worker heartbeat deadline — a crash is detected the moment the
  kernel reaps the child (sentinel/EOF, with the exit code recorded),
  and a hang is detected when the deadline lapses, so the two failure
  modes are distinguished in the forensics instead of both surfacing as
  an anonymous ``TimeoutError`` minutes later.

* **Window-log replay.**  A partitioned worker is a deterministic pure
  function of ``(scenario, partition index, the sequence of coordinator
  messages)``: same seed, same envelope batches, same state — that is
  the bit-identity contract ``verify`` asserts.  The supervisor
  therefore keeps, per partition, the full log of messages sent since
  worker start.  When a worker dies, a fresh process is spawned for the
  same partition and the log is replayed to reconstruct bit-identical
  state.  Responses to already-acknowledged positions are discarded
  (their envelopes were already routed — replay makes them
  deterministic duplicates); the at-most-one unacknowledged response is
  absorbed exactly as the dead incarnation's answer would have been.
  Restarts are bounded (``max_restarts`` per partition) with
  exponential backoff between attempts.

* **Snapshot verification.**  True log compaction is impossible here:
  worker state lives in Python generator frames (the kernel threads on
  the simulator agenda), which cannot pickle, so there is no checkpoint
  to restart from and the log is never truncated.  What the ``snapshot``
  command *can* do is pickle the worker's fragment-so-far; the
  supervisor records its digest per log position and, during replay,
  hard-checks that the respawned worker reproduces every recorded
  snapshot byte-for-byte — a replay-fidelity witness, and fragment
  forensics for post-mortems.

* **Graceful degradation.**  When a partition exhausts its restart
  budget the supervisor reaps every worker (terminate, then SIGKILL,
  then fail loudly if a process leaks) and raises a structured
  :class:`~repro.errors.ScaleoutError` carrying per-partition forensics:
  last window reached, events processed, restart count, exit codes, and
  the full failure history.

* **Partition-aware faults.**  A :class:`~repro.faults.FaultScenario`
  can ride along: its in-simulation events are handed to *every* worker
  verbatim (each applies the slice whose targets it materialized
  locally, via the injector's non-strict mode), so a faulted
  partitioned run stays digest-identical to the faulted single-process
  run; its process-level ``kill_worker`` events are applied by the
  supervisor itself, SIGKILLing live workers mid-run to exercise the
  recovery path end-to-end (``scaleout --chaos``).

Beyond crash tolerance, this coordinator is built for wall-clock
throughput:

* **Multi-window batched rounds.**  Each round grants worker ``i`` a
  window ``W_i = min(H_i, N + batch * L_min) - 1``, where ``H_i`` is the
  earliest instant any *other* partition could land a yet-unknown
  envelope on ``i`` (its per-boundary horizon) and ``batch`` is the
  budget of lookahead-widths granted per pipe round trip.  Every window
  in the batch is causally closed at once — see ``docs/SCALEOUT.md`` —
  so ``batch`` consecutive windows of the classic protocol collapse
  into one exchange, with the worker's envelopes buffered in its outbox
  and flushed once per round.

* **Per-boundary lookahead.**  ``H_i`` is computed from
  :func:`~repro.scaleout.partition.lookahead_matrix`: the minimum fiber
  latency actually crossing each cut, closed over the partition graph's
  shortest paths, instead of the single global minimum — partitions
  separated by multiple cuts get proportionally wider windows.

* **Shared-memory envelope transport.**  With ``transport="shm"``,
  envelope blocks are batch-pickled into a per-worker-per-direction
  :class:`~repro.scaleout.wire.ShmRing` and only a doorbell crosses the
  pipe; ``transport="pipe"`` keeps the original pickle-through-pipe
  path.  Either way the pipe remains the control channel the
  multiplexed wait watches, and the window log stores *logical*
  messages, so replay is transport-agnostic and re-grants identical
  budgets.

* **Idle-worker elision.**  A worker whose granted window contains no
  local event and no due envelope is simply not messaged that round —
  its state cannot change, so its last report stays authoritative.

See ``docs/SCALEOUT.md`` ("Fault tolerance", "Batched windows") for the
recovery- and batching-soundness arguments.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
import multiprocessing as mp
from fnmatch import fnmatchcase
from typing import Any, Optional

from ..errors import ScaleoutError
from ..faults.campaigns import build_campaign
from ..faults.scenario import FaultEvent, FaultScenario
from .escl import (ScaleoutScenario, fingerprint_digest, scenarios,
                   spawn_traffic)
from .partition import (PartitionSystem, lookahead_matrix, lookahead_ns,
                        partition_fabric)
from .wire import DEFAULT_RING_BYTES, Channel, ShmRing

__all__ = ["TRANSPORTS", "Supervisor", "SupervisorOutcome",
           "escl_campaign"]

#: Envelope transports the supervisor speaks.
TRANSPORTS = ("pipe", "shm")

#: Hard ceiling on the exponential restart backoff (seconds).
_BACKOFF_CAP_S = 2.0
#: Seconds granted to each escalation step when reaping a worker.
_REAP_STEP_S = 5.0

#: E-SCL runs finish within a few hundred microseconds of simulated
#: time (vs the default workload's milliseconds), so campaigns need
#: windows placed inside that span to fire at all.
_ESCL_CAMPAIGN_DEFAULTS: dict[str, dict[str, int]] = {
    "drop-burst": {"start_ns": 5_000, "horizon_ns": 150_000,
                   "duration_ns": 30_000},
    "corrupt-burst": {"start_ns": 5_000, "horizon_ns": 150_000,
                      "duration_ns": 30_000},
    "reply-storm": {"start_ns": 5_000, "horizon_ns": 150_000,
                    "duration_ns": 30_000},
    "link-flap": {"start_ns": 5_000, "horizon_ns": 150_000,
                  "duration_ns": 30_000},
    "worker-kill": {"start_ns": 10_000, "horizon_ns": 200_000},
}


def escl_campaign(name: str, cfg, **overrides) -> FaultScenario:
    """Build a named campaign with windows sized for E-SCL runs."""
    params: dict[str, Any] = dict(_ESCL_CAMPAIGN_DEFAULTS.get(name, {}))
    params.update(overrides)
    return build_campaign(name, cfg, **params)


def _worker_main(conn, scenario_name: str, num_partitions: int,
                 index: int, faults_spec: Optional[dict] = None,
                 rings: Optional[tuple] = None) -> None:
    """Worker process: one partition, advanced in coordinator windows.

    Replies in lock-step to coordinator commands (through a
    :class:`~repro.scaleout.wire.Channel`; ``rings`` is the fork-
    inherited ``(coordinator->worker, worker->coordinator)`` shm pair,
    or ``None`` for the plain pipe transport):

    * ``("advance", window, envelopes)`` → inject, run to the window,
      answer ``("state", peek, outbox, events_processed, compute_s)``
      where ``compute_s`` is the wall time this advance spent inside
      inject + run — the worker's share of the round-timing breakdown.
    * ``("snapshot",)`` → answer ``("snapshot", fragment,
      events_processed, now)`` — the picklable fragment-so-far.
    * ``("finish",)`` → answer ``("result", fragment, events_processed,
      now)`` and exit.

    Any exception is reported as ``("error", traceback_text)`` straight
    down the raw pipe (never the ring — the ring may be the broken
    part) before the worker exits non-zero, so the coordinator sees the
    worker-side stack instead of a silent death.
    """
    try:
        channel = Channel(conn) if rings is None \
            else Channel(conn, tx=rings[1], rx=rings[0])
        scenario = scenarios()[scenario_name]
        partitioning = partition_fabric(scenario.fabric, num_partitions)
        system = PartitionSystem(partitioning, index, scenario.config())
        if faults_spec is not None:
            system.attach_faults(FaultScenario.from_dict(faults_spec))
        traffic = spawn_traffic(scenario, system)
        channel.send(("state", system.peek(), system.drain_outbox(),
                      system.sim.events_processed, 0.0))
        while True:
            message = channel.recv()
            if message[0] == "advance":
                _tag, window, envelopes = message
                began = time.perf_counter()
                system.inject(envelopes)
                # Grants are monotone per worker (horizons only ever
                # move forward), so the clamp is normally a no-op; it
                # pins the invariant instead of letting a violation
                # surface as run()'s in-the-past ValueError mid-run.
                system.run(until=max(window, system.now))
                compute = time.perf_counter() - began
                channel.send(("state", system.peek(),
                              system.drain_outbox(),
                              system.sim.events_processed, compute))
            elif message[0] == "snapshot":
                channel.send(("snapshot", traffic.fragment(),
                              system.sim.events_processed, system.now))
            elif message[0] == "finish":
                channel.send(("result", traffic.fragment(),
                              system.sim.events_processed, system.now))
                conn.close()
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(
                    f"unknown coordinator message {message[0]!r}")
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
        raise SystemExit(1)


class _WorkerDied(Exception):
    """Internal signal: a worker failed (reason, detail, exit code)."""

    def __init__(self, reason: str, detail: str,
                 exit_code: Optional[int]) -> None:
        super().__init__(detail)
        self.reason = reason
        self.detail = detail
        self.exit_code = exit_code


class _Worker:
    """One partition's process handle plus its replay bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[mp.process.BaseProcess] = None
        self.conn = None
        #: The transport wrapper around ``conn`` (pipe or shm-backed).
        self.channel: Optional[Channel] = None
        #: ``(coordinator->worker, worker->coordinator)`` shm rings for
        #: the current incarnation (``None`` under the pipe transport).
        self.rings: Optional[tuple] = None
        #: Round-timing breakdown, accumulated across the run:
        #: worker-reported seconds inside inject+run, coordinator-side
        #: seconds blocked on this worker past its reported compute,
        #: and coordinator-side seconds encoding/decoding its messages.
        self.compute_s = 0.0
        self.wait_s = 0.0
        self.exchange_s = 0.0
        #: perf_counter at the last advance send (wait accounting).
        self.sent_at: Optional[float] = None
        #: Every message sent since the *first* spawn — the replay log.
        self.log: list[tuple] = []
        #: Responses absorbed so far.  Position 0 is the initial state
        #: report; position ``i >= 1`` answers ``log[i - 1]``.
        self.acked = 0
        #: Wall-clock deadline for the outstanding response, if any.
        self.deadline: Optional[float] = None
        self.restarts = 0
        self.failures: list[dict[str, Any]] = []
        #: Log position -> fragment digest, recorded at ``snapshot``
        #: responses and re-checked during replay.
        self.snapshots: dict[int, str] = {}
        self.advances_since_snapshot = 0
        self.last_window: Optional[int] = None
        self.events = 0
        self.result: Optional[tuple] = None

    @property
    def outstanding(self) -> bool:
        """Is there a request this worker has not answered yet?"""
        return self.acked < 1 + len(self.log)

    def forensics(self) -> dict[str, Any]:
        """Everything the post-mortem needs about this partition."""
        return {
            "partition": self.index,
            "restarts": self.restarts,
            "last_window": self.last_window,
            "acked_responses": self.acked,
            "log_messages": len(self.log),
            "events": self.events,
            "failures": list(self.failures),
        }


@dataclass
class SupervisorOutcome:
    """What a completed supervised run hands back to the runner."""

    fragments: list[dict[str, Any]]
    events: int
    sim_ns: int
    wall_s: float
    rounds: int
    envelopes: int
    restarts: int
    replayed_windows: int
    worker_kills: int
    snapshots_verified: int
    #: Worker fork + fabric-build time (until every initial state
    #: report landed); ``wall_s`` above is steady-state exchange only.
    setup_s: float = 0.0
    #: Advance messages actually sent (idle workers are elided).
    advances: int = 0
    #: Per-partition ``{"compute_s": [...], "wait_s": [...],
    #: "exchange_s": [...]}`` round-timing breakdown.
    timing: dict[str, list[float]] = field(default_factory=dict)
    forensics: list[dict[str, Any]] = field(default_factory=list)


class Supervisor:
    """Crash-tolerant barrier-round coordinator for one partitioned run.

    Drives ``num_partitions`` worker processes through the conservative
    lookahead protocol (see :mod:`repro.scaleout.runner`), recovering
    dead or hung workers by respawn + window-log replay.  One instance
    runs one scenario once (:meth:`run`).
    """

    def __init__(self, scenario: ScaleoutScenario, num_partitions: int, *,
                 faults: Optional[FaultScenario] = None,
                 max_restarts: int = 2, hang_timeout_s: float = 600.0,
                 backoff_base_s: float = 0.05, snapshot_every: int = 0,
                 batch: int = 8, transport: str = "shm",
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 registry=None) -> None:
        if num_partitions < 2:
            raise ScaleoutError(
                "the supervisor coordinates >= 2 workers; "
                "use run_single for one process")
        if batch < 1:
            raise ScaleoutError(
                f"batch must be >= 1 window per round, got {batch}")
        if transport not in TRANSPORTS:
            raise ScaleoutError(
                f"unknown transport {transport!r} "
                f"(have: {', '.join(TRANSPORTS)})")
        self.scenario = scenario
        self.num_partitions = num_partitions
        self.max_restarts = max_restarts
        self.hang_timeout_s = hang_timeout_s
        self.backoff_base_s = backoff_base_s
        self.snapshot_every = snapshot_every
        self.batch = batch
        self.transport = transport
        self.ring_bytes = ring_bytes
        self.partitioning = partition_fabric(scenario.fabric,
                                             num_partitions)
        self.owners = self.partitioning.owner_map()
        cfg = scenario.config()
        self.lookahead = lookahead_ns(cfg)
        #: ``distance[src][dst]``: earliest a signal committed in
        #: ``src`` can land in ``dst`` (per-boundary lookahead, closed
        #: over multi-cut paths).
        self.distance = lookahead_matrix(self.partitioning, cfg)
        self.ctx = mp.get_context("fork")
        self.workers = [_Worker(i) for i in range(num_partitions)]
        #: Per destination partition: (arrival, src, seq, envelope).
        self.pending: list[list[tuple]] = [[] for _ in
                                           range(num_partitions)]
        self.peeks: list[Optional[int]] = [None] * num_partitions
        if faults is not None:
            sim_faults, process_events = faults.split_process_events()
            self._faults_spec = (sim_faults.to_dict()
                                 if sim_faults.events else None)
            self._kill_events = process_events
        else:
            self._faults_spec = None
            self._kill_events = []
        self._kills_fired: set[int] = set()
        self.rounds = 0
        self.envelopes = 0
        self.advances = 0
        self.restarts = 0
        self.replayed_windows = 0
        self.worker_kills = 0
        self.snapshots_verified = 0
        self.setup_s = 0.0
        self._counters = {}
        self._gauges = {}
        if registry is not None:
            self._counters = {
                "restarts": registry.counter(
                    "scaleout.restarts",
                    "worker processes respawned after a failure",
                    unit="restarts"),
                "replayed_windows": registry.counter(
                    "scaleout.replayed_windows",
                    "advance windows resent during log replay",
                    unit="windows"),
                "worker_kills": registry.counter(
                    "scaleout.worker_kills",
                    "workers SIGKILLed by chaos campaign events",
                    unit="kills"),
                "rounds": registry.counter(
                    "scaleout.rounds",
                    "coordinator barrier rounds driven", unit="rounds"),
                "advances": registry.counter(
                    "scaleout.advances",
                    "advance grants actually sent (idle elision skips "
                    "the rest)", unit="messages"),
            }
            self._gauges = {"setup_s": registry.gauge(
                "scaleout.setup_s",
                "worker fork + fabric build time", unit="s")}
            for index in range(num_partitions):
                self._counters[f"p{index}.envelopes"] = registry.counter(
                    f"scaleout.p{index}.envelopes",
                    f"envelopes routed to partition {index}",
                    unit="envelopes")
                self._counters[f"p{index}.restarts"] = registry.counter(
                    f"scaleout.p{index}.restarts",
                    f"partition {index} worker respawns", unit="restarts")
                for phase, what in (
                        ("compute_s", "worker-reported inject+run time"),
                        ("wait_s", "coordinator time blocked past the "
                                   "worker's reported compute"),
                        ("exchange_s", "coordinator encode/decode/"
                                       "send/recv time")):
                    self._gauges[f"p{index}.{phase}"] = registry.gauge(
                        f"scaleout.p{index}.{phase}",
                        f"partition {index}: {what}", unit="s")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def run(self) -> SupervisorOutcome:
        """Drive the full protocol; always reaps every worker on exit."""
        start = time.perf_counter()
        try:
            for worker in self.workers:
                self._spawn(worker)
            self._fire_kills(window=0)
            self._collect()
            # Everything up to the last initial state report is setup —
            # fork, fabric build, traffic spawn — not exchange.
            self.setup_s = time.perf_counter() - start
            self._set_gauge("setup_s", self.setup_s)
            steady = time.perf_counter()
            while self._round():
                pass
            for worker in self.workers:
                self._send(worker, ("finish",))
            self._collect()
            wall = time.perf_counter() - steady
            self._publish_timing()
        finally:
            self._reap_all()
        events, sim_ns, fragments = 0, 0, []
        for worker in self.workers:
            _tag, fragment, worker_events, worker_now = worker.result
            fragments.append(fragment)
            events += worker_events
            sim_ns = max(sim_ns, worker_now)
        return SupervisorOutcome(
            fragments=fragments, events=events, sim_ns=sim_ns,
            wall_s=wall, rounds=self.rounds, envelopes=self.envelopes,
            restarts=self.restarts,
            replayed_windows=self.replayed_windows,
            worker_kills=self.worker_kills,
            snapshots_verified=self.snapshots_verified,
            setup_s=self.setup_s, advances=self.advances,
            timing={
                "compute_s": [w.compute_s for w in self.workers],
                "wait_s": [w.wait_s for w in self.workers],
                "exchange_s": [w.exchange_s for w in self.workers],
            },
            forensics=[w.forensics() for w in self.workers])

    def _round(self) -> bool:
        """Drive one batched barrier round; False when the run is done.

        Per-partition horizons: ``T[j]`` is the earliest instant
        partition ``j`` could commit a *new* cross-partition message —
        the min of its next local event and every undelivered envelope
        arrival destined to it (an injected envelope can trigger an
        immediate send).  Worker ``i`` may then safely consume every
        event up to ``grant_i = min(H_i, N + batch * L_min) - 1`` where
        ``H_i = min over all j of (T[j] + distance[j][i])``: any
        yet-unknown envelope reaching ``i`` is the tail of a causal
        chain of commits starting from some trigger ``T[j]``, and each
        hop of the chain pays at least the crossed cut's lookahead, so
        the chain's arrival is bounded below by the shortest-path
        closure in :func:`~repro.scaleout.partition.lookahead_matrix`.
        The ``j == i`` term (the matrix diagonal: shortest feedback
        cycle) is what keeps *batched* rounds sound — inside one wide
        grant a neighbour can react to ``i``'s own sends, so ``i`` may
        not outrun its own trigger plus the round trip.  The batch
        budget then caps how far a round may run ahead of the global
        horizon ``N``.  Workers with nothing to do inside their grant
        (no due envelope, no local event) are elided from the round
        entirely.
        """
        horizons: list[Optional[int]] = []
        for index in range(self.num_partitions):
            earliest = self.peeks[index]
            for entry in self.pending[index]:
                if earliest is None or entry[0] < earliest:
                    earliest = entry[0]
            horizons.append(earliest)
        finite = [t for t in horizons if t is not None]
        if not finite:
            return False
        cap = min(finite) + self.batch * self.lookahead
        self.rounds += 1
        self._bump("rounds")
        distance = self.distance
        for worker in self.workers:
            index = worker.index
            bound = cap
            for source, available in enumerate(horizons):
                if available is None:
                    continue
                reach = available + distance[source][index]
                if reach < bound:
                    bound = reach
            grant = bound - 1
            pending = self.pending[index]
            batch = sorted(e for e in pending if e[0] <= grant)
            peek = self.peeks[index]
            if not batch and (peek is None or peek > grant):
                # Nothing can happen in this worker before ``grant``;
                # its last state report stays authoritative, so skip
                # the round trip.  (The worker that owns the global
                # minimum always has work, so rounds always progress.)
                continue
            if batch:
                self.pending[index] = [e for e in pending
                                       if e[0] > grant]
            self._send(worker, ("advance", grant,
                                [entry[3] for entry in batch]))
            self.advances += 1
            self._bump("advances")
            worker.last_window = grant
        self._fire_kills(cap - 1)
        self._collect()
        return True

    def _spawn(self, worker: _Worker) -> None:
        parent, child = self.ctx.Pipe()
        rings = None
        if self.transport == "shm":
            # Fresh rings per incarnation, created *before* the fork so
            # the child inherits the mappings — replay over a respawn
            # never reads a segment the dead incarnation wrote.
            self._unlink_rings(worker)
            rings = (ShmRing(self.ring_bytes), ShmRing(self.ring_bytes))
            worker.rings = rings
        process = self.ctx.Process(
            target=_worker_main,
            args=(child, self.scenario.name, self.num_partitions,
                  worker.index, self._faults_spec, rings),
            name=(f"scaleout-{self.scenario.name}-p{worker.index}"
                  f"-r{worker.restarts}"),
            daemon=True)
        process.start()
        # Close our copy of the child's pipe end, or EOF never fires.
        child.close()
        worker.process = process
        worker.conn = parent
        worker.channel = (Channel(parent) if rings is None
                          else Channel(parent, tx=rings[0], rx=rings[1]))
        worker.deadline = time.monotonic() + self.hang_timeout_s

    # ------------------------------------------------------------------
    # sending and collecting
    # ------------------------------------------------------------------

    def _send(self, worker: _Worker, message: tuple) -> None:
        """Log then send; a broken pipe triggers recovery (which will
        resend the just-logged message as the replay tail).

        The log holds the *logical* message; the channel decides how it
        travels (ring block vs pipe), so replay over a fresh incarnation
        with fresh rings re-grants byte-identical budgets.
        """
        worker.log.append(message)
        began = time.perf_counter()
        try:
            worker.channel.send(message)
            worker.exchange_s += time.perf_counter() - began
            worker.sent_at = began
            worker.deadline = time.monotonic() + self.hang_timeout_s
        except (BrokenPipeError, OSError):
            self._recover(worker, "crash",
                          "pipe broke while sending the next command")

    def _collect(self) -> None:
        """Wait until every worker has answered everything sent so far,
        recovering any worker that crashes or misses its deadline."""
        while True:
            lagging = [w for w in self.workers if w.outstanding]
            if not lagging:
                return
            now = time.monotonic()
            expired = [w for w in lagging if w.deadline is not None
                       and now > w.deadline]
            if expired:
                worker = expired[0]
                self._kill_process(worker)
                self._recover(
                    worker, "hang",
                    f"no answer within {self.hang_timeout_s:.1f}s "
                    f"(last window {worker.last_window})")
                continue
            timeout = min(w.deadline for w in lagging
                          if w.deadline is not None) - now
            by_conn = {w.conn: w for w in lagging}
            by_sentinel = {w.process.sentinel: w for w in lagging}
            ready = mp_connection.wait(
                list(by_conn) + list(by_sentinel),
                timeout=max(timeout, 0.001))
            progressed = False
            for obj in ready:
                worker = by_conn.get(obj)
                if worker is None:
                    continue
                progressed = True
                try:
                    message = self._recv(worker)
                except (EOFError, OSError):
                    self._recover(worker, "crash",
                                  "pipe EOF while awaiting a response")
                    break
                self._handle(worker, message)
                break
            if progressed:
                continue
            for obj in ready:
                worker = by_sentinel.get(obj)
                if worker is None or not worker.outstanding:
                    continue
                # The process is gone, but a complete response may
                # still be buffered in the pipe — drain it first.
                if worker.conn.poll(0):
                    try:
                        message = self._recv(worker)
                    except (EOFError, OSError):
                        self._recover(worker, "crash",
                                      "worker exited mid-response")
                        break
                    self._handle(worker, message)
                    break
                self._recover(worker, "crash",
                              "worker process exited without answering")
                break

    def _recv(self, worker: _Worker) -> tuple:
        """Raw pipe receive plus timed shm-block decode.

        The blocking happens in :func:`multiprocessing.connection.wait`
        before this is called (that is *wait* time, charged in
        :meth:`_absorb`); what this times — unpickling the doorbell's
        ring block — is exchange cost.
        """
        raw = worker.conn.recv()
        began = time.perf_counter()
        message = worker.channel.decode(raw)
        worker.exchange_s += time.perf_counter() - began
        return message

    def _handle(self, worker: _Worker, message: tuple) -> None:
        """Absorb one in-order response from a live worker."""
        tag = message[0]
        if tag == "error":
            self._recover(worker, "exception", message[1])
            return
        position = worker.acked
        entry = None if position == 0 else worker.log[position - 1]
        if tag == "state":
            self._absorb(worker, message)
            worker.acked += 1
            worker.deadline = None
            if entry is not None and entry[0] == "advance":
                worker.advances_since_snapshot += 1
                if self.snapshot_every \
                        and worker.advances_since_snapshot \
                        >= self.snapshot_every:
                    worker.advances_since_snapshot = 0
                    self._send(worker, ("snapshot",))
        elif tag == "snapshot":
            _tag, fragment, events, _now = message
            worker.snapshots[position] = fingerprint_digest(
                self.scenario.name, fragment)
            worker.events = events
            worker.acked += 1
            worker.deadline = None
        elif tag == "result":
            worker.result = message
            worker.events = message[2]
            worker.acked += 1
            worker.deadline = None
        else:  # pragma: no cover - protocol misuse
            raise ScaleoutError(
                f"scale-out {self.scenario.name!r} partition "
                f"{worker.index}: unknown worker response {tag!r}")

    def _absorb(self, worker: _Worker, state: tuple) -> None:
        """Route one state report's envelopes; track peek, events,
        and the compute/wait split for this round trip."""
        _tag, peek, outbox, events, compute = state
        worker.compute_s += compute
        if worker.sent_at is not None:
            elapsed = time.perf_counter() - worker.sent_at
            worker.wait_s += max(elapsed - compute, 0.0)
            worker.sent_at = None
        self.peeks[worker.index] = peek
        worker.events = events
        self.envelopes += len(outbox)
        for envelope in outbox:
            destination = self.owners[envelope[3]]
            self.pending[destination].append(
                (envelope[0], worker.index, envelope[1], envelope))
            self._bump(f"p{destination}.envelopes")

    # ------------------------------------------------------------------
    # failure handling: record, respawn, replay
    # ------------------------------------------------------------------

    def _recover(self, worker: _Worker, reason: str, detail: str) -> None:
        """Respawn ``worker`` and replay its log until it is caught up.

        Raises :class:`ScaleoutError` with full forensics once the
        partition's restart budget is exhausted.
        """
        while True:
            self._record_failure(worker, reason, detail)
            self._reap(worker)
            if worker.restarts >= self.max_restarts:
                self._give_up(worker, reason)
            worker.restarts += 1
            self.restarts += 1
            self._bump("restarts")
            self._bump(f"p{worker.index}.restarts")
            delay = min(self.backoff_base_s * (2 ** (worker.restarts - 1)),
                        _BACKOFF_CAP_S)
            time.sleep(delay)
            self._spawn(worker)
            try:
                self._replay(worker)
                return
            except _WorkerDied as died:
                reason, detail = died.reason, died.detail

    def _replay(self, worker: _Worker) -> None:
        """Feed a fresh incarnation the full log, byte-for-byte.

        Responses to positions ``< worker.acked`` are deterministic
        duplicates: their envelopes were already routed, so outboxes are
        discarded and snapshot digests are verified against the record.
        The at-most-one position ``== worker.acked`` is the response the
        dead incarnation never gave; it is absorbed normally.
        """
        # The pre-crash send timestamp would fold restart backoff into
        # wait_s; replay round trips are recovery cost, not wait.
        worker.sent_at = None
        message = self._recv_replay(worker)
        if message[0] != "state":  # pragma: no cover - protocol misuse
            raise ScaleoutError(
                f"scale-out {self.scenario.name!r} partition "
                f"{worker.index}: replay expected a state report, "
                f"got {message[0]!r}")
        if worker.acked == 0:
            self._absorb(worker, message)
            worker.acked = 1
        replayed = 0
        # Snapshot the length: absorbing the tail response may append a
        # fresh ("snapshot",) request (already sent by _send) that must
        # not be re-sent by this loop.
        log_len = len(worker.log)
        for position in range(1, log_len + 1):
            entry = worker.log[position - 1]
            try:
                worker.channel.send(entry)
            except (BrokenPipeError, OSError):
                raise _WorkerDied("crash",
                                  "pipe broke during replay",
                                  self._exit_code(worker)) from None
            message = self._recv_replay(worker)
            if entry[0] == "advance":
                replayed += 1
            if message[0] == "error":
                raise _WorkerDied("exception", message[1],
                                  self._exit_code(worker))
            if position < worker.acked:
                if entry[0] == "snapshot":
                    self._verify_snapshot(worker, position, message)
                continue
            # The single unacknowledged position: absorb for real.
            self._handle(worker, message)
        self.replayed_windows += replayed
        self._bump("replayed_windows", replayed)
        worker.deadline = (time.monotonic() + self.hang_timeout_s
                           if worker.outstanding else None)

    def _verify_snapshot(self, worker: _Worker, position: int,
                         message: tuple) -> None:
        """Replay-fidelity hard check: same position, same fragment."""
        digest = fingerprint_digest(self.scenario.name, message[1])
        recorded = worker.snapshots.get(position)
        if recorded is not None and recorded != digest:
            self._reap_all()
            raise ScaleoutError(
                f"scale-out {self.scenario.name!r} partition "
                f"{worker.index}: replay diverged at log position "
                f"{position} (snapshot digest {digest[:16]} != recorded "
                f"{recorded[:16]}); the determinism contract is broken",
                forensics=[w.forensics() for w in self.workers])
        self.snapshots_verified += 1

    def _recv_replay(self, worker: _Worker) -> tuple:
        """One blocking, deadline-guarded receive during replay."""
        deadline = time.monotonic() + self.hang_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill_process(worker)
                raise _WorkerDied(
                    "hang",
                    f"no answer within {self.hang_timeout_s:.1f}s "
                    f"during replay", self._exit_code(worker))
            ready = mp_connection.wait(
                [worker.conn, worker.process.sentinel],
                timeout=remaining)
            if worker.conn in ready or worker.conn.poll(0):
                try:
                    return worker.channel.decode(worker.conn.recv())
                except (EOFError, OSError):
                    raise _WorkerDied(
                        "crash", "pipe EOF during replay",
                        self._exit_code(worker)) from None
            if worker.process.sentinel in ready:
                raise _WorkerDied(
                    "crash", "worker died during replay",
                    self._exit_code(worker))

    def _record_failure(self, worker: _Worker, reason: str,
                        detail: str) -> None:
        worker.failures.append({
            "reason": reason,
            "detail": detail,
            "exit_code": self._exit_code(worker),
            "last_window": worker.last_window,
            "events": worker.events,
            "acked_responses": worker.acked,
        })

    def _give_up(self, worker: _Worker, reason: str) -> None:
        """Budget exhausted: reap everything, raise with forensics."""
        self._reap_all()
        raise ScaleoutError(
            f"scale-out {self.scenario.name!r} partition {worker.index} "
            f"failed ({reason}) and exhausted its restart budget "
            f"({self.max_restarts} restarts); see forensics",
            forensics=[w.forensics() for w in self.workers])

    # ------------------------------------------------------------------
    # process plumbing
    # ------------------------------------------------------------------

    def _exit_code(self, worker: _Worker) -> Optional[int]:
        process = worker.process
        if process is None:
            return None
        process.join(timeout=_REAP_STEP_S)
        return process.exitcode

    def _kill_process(self, worker: _Worker) -> None:
        process = worker.process
        if process is not None and process.is_alive():
            process.kill()

    def _reap(self, worker: _Worker) -> None:
        """Terminate → SIGKILL → fail loudly if the process leaks."""
        process = worker.process
        if process is None:
            return
        process.join(timeout=_REAP_STEP_S)
        if process.is_alive():
            process.terminate()
            process.join(timeout=_REAP_STEP_S)
        if process.is_alive():
            process.kill()
            process.join(timeout=_REAP_STEP_S)
        if process.is_alive():
            raise ScaleoutError(
                f"scale-out {self.scenario.name!r} partition "
                f"{worker.index}: worker pid {process.pid} survived "
                f"terminate and SIGKILL; refusing to leak it silently",
                forensics=[w.forensics() for w in self.workers])
        if worker.conn is not None:
            worker.conn.close()
            worker.conn = None
        worker.channel = None
        self._unlink_rings(worker)
        worker.process = None

    def _unlink_rings(self, worker: _Worker) -> None:
        """Release the worker's shm segments (process already gone)."""
        rings = worker.rings
        if rings is None:
            return
        worker.rings = None
        for ring in rings:
            ring.close()
            ring.unlink()

    def _reap_all(self) -> None:
        for worker in self.workers:
            self._kill_process(worker)
        for worker in self.workers:
            self._reap(worker)

    # ------------------------------------------------------------------
    # process-level chaos
    # ------------------------------------------------------------------

    def _fire_kills(self, window: int) -> None:
        """SIGKILL workers matched by due ``kill_worker`` events.

        An event is due once the coordinator window reaches its
        ``at_ns`` (``at_ns <= 0`` fires right after spawn, before the
        first state report).  Each event fires exactly once; whichever
        instant the signal lands, replay restores bit-identical state,
        so the run's digest is unaffected — only the restart counters
        and wall clock change.
        """
        for index, event in enumerate(self._kill_events):
            if index in self._kills_fired or event.at_ns > window:
                continue
            self._kills_fired.add(index)
            for worker in self.workers:
                if not fnmatchcase(str(worker.index), event.target):
                    continue
                process = worker.process
                if process is None or not process.is_alive():
                    continue
                os.kill(process.pid, signal.SIGKILL)
                self.worker_kills += 1
                self._bump("worker_kills")

    def _bump(self, name: str, amount: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is not None and amount > 0:
            counter.inc(amount)

    def _set_gauge(self, name: str, value: float) -> None:
        gauge = self._gauges.get(name)
        if gauge is not None:
            gauge.set(value)

    def _publish_timing(self) -> None:
        for worker in self.workers:
            self._set_gauge(f"p{worker.index}.compute_s",
                            worker.compute_s)
            self._set_gauge(f"p{worker.index}.wait_s", worker.wait_s)
            self._set_gauge(f"p{worker.index}.exchange_s",
                            worker.exchange_s)
