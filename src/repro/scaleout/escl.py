"""E-SCL scenarios: deterministic traffic for partitioned scale-out runs.

Each scenario fixes a large regular fabric (from
:mod:`repro.topology.fabrics`), a seeded configuration, and a shift
permutation workload: CAB ``i`` sends ``messages_per_cab`` datagrams to
CAB ``(i + n/2) mod n``.  The half-rotation guarantees that contiguous
hub partitions exchange most of their traffic *across* partition
boundaries — the worst case for the synchronization protocol, and
therefore the honest one to benchmark.

Determinism is the load-bearing property: the same scenario must produce
a bit-identical fingerprint whether it runs in one process or sharded
across N workers.  Two rules make that hold:

* Everything a fingerprint includes is **order-insensitive within a
  tick**.  A partitioned run merges per-worker event heaps, so two
  events at the same timestamp in different partitions may execute in
  either order; totals, per-CAB content hashes over *sorted* per-message
  digests, and per-hub counter totals are unaffected, while a raw event
  interleaving would not be.
* Everything is **locally computable**.  Each worker produces a fragment
  covering only its own CABs and hubs; fragments merge by dict union
  (key sets are disjoint by construction) and the merged fingerprint
  hashes identically to the single-process one.

Per-sender message sizes vary (``message_bytes + (13 i mod 29)``) and
senders start at staggered times, so no two cross-partition packets are
byte-for-byte symmetric — ties that *would* be reorder-sensitive are
engineered out of the workload rather than papered over.
"""

from __future__ import annotations

import hashlib
import json
import random
from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Any, Optional

from ..config import NectarConfig
from ..topology.fabrics import (FabricSpec, fat_tree_fabric,
                                hypercube_fabric, torus_fabric)

__all__ = ["SEED", "ScaleoutScenario", "Traffic", "fingerprint_digest",
           "merge_fragments", "scenarios", "spawn_traffic"]

SEED = 1989

#: Mailbox every receiver listens on.
_MAILBOX = "escl"


@dataclass(frozen=True)
class ScaleoutScenario:
    """A named fabric + seeded workload, shared by every run shape."""

    name: str
    description: str
    fabric: FabricSpec
    messages_per_cab: int = 4
    message_bytes: int = 512
    #: Inter-HUB fiber propagation (simulated ns).  Scale-out scenarios
    #: model a longer machine-room fiber plant than the default config;
    #: this is also the conservative lookahead, so it sets how much
    #: simulated time each synchronization round covers.
    propagation_ns: int = 800
    mode: str = "packet"

    def config(self) -> NectarConfig:
        """The seeded config every process building this scenario uses."""
        cfg = NectarConfig(seed=SEED)
        return cfg.with_overrides(
            fiber=replace(cfg.fiber, propagation_ns=self.propagation_ns))

    @property
    def num_cabs(self) -> int:
        return len(self.fabric.cabs)

    def partner(self, index: int) -> int:
        """Destination CAB index for sender ``index`` (half rotation)."""
        count = self.num_cabs
        return (index + count // 2) % count

    def sender_bytes(self, index: int) -> int:
        """Per-message size for sender ``index`` (breaks tie symmetry)."""
        return self.message_bytes + (index * 13) % 29


class Traffic:
    """The spawned workload's collection surface for one process.

    After the simulation has drained, :meth:`fragment` returns this
    process's share of the fingerprint — covering exactly the CABs and
    hubs the hosting system materialized.
    """

    def __init__(self, scenario: ScaleoutScenario, system: Any) -> None:
        self.scenario = scenario
        self.system = system
        self.received: dict[str, list[str]] = defaultdict(list)
        self.done_ns: dict[str, int] = {}
        self.sent: dict[str, int] = {}

    def fragment(self) -> dict[str, Any]:
        """This process's locally-observed slice of the fingerprint."""
        content = {
            cab: hashlib.sha256(
                "\n".join(sorted(digests)).encode()).hexdigest()
            for cab, digests in self.received.items()
        }
        return {
            "delivered": {cab: len(d) for cab, d in self.received.items()},
            "content": content,
            "done_ns": dict(self.done_ns),
            "sent": dict(self.sent),
            "hub_counters": {
                name: dict(sorted(hub.counters.items()))
                for name, hub in self.system.hubs.items()
            },
        }


def _message_digest(src: str, data: bytes) -> str:
    hasher = hashlib.sha256(f"{src}|{len(data)}|".encode())
    hasher.update(data)
    return hasher.hexdigest()


def _sender(scenario: ScaleoutScenario, stack: Any, index: int,
            traffic: Traffic):
    names = scenario.fabric.cab_names
    dst = names[scenario.partner(index)]
    size = scenario.sender_bytes(index)
    rng = random.Random((SEED << 5) ^ index)
    # Staggered starts: no two senders commit their first packet on the
    # same tick, which keeps cross-partition batches free of symmetric
    # same-timestamp pairs.
    yield from stack.kernel.sleep(1 + (index * 911) % 4096)
    for _ in range(scenario.messages_per_cab):
        body = rng.randbytes(size)
        yield from stack.transport.datagram.send(
            dst, _MAILBOX, data=body, mode=scenario.mode)
        traffic.sent[stack.name] = traffic.sent.get(stack.name, 0) + 1


def _receiver(scenario: ScaleoutScenario, stack: Any, traffic: Traffic):
    mailbox = stack.create_mailbox(
        _MAILBOX, capacity=scenario.messages_per_cab + 8)
    for _ in range(scenario.messages_per_cab):
        message = yield from stack.kernel.wait(mailbox.get())
        traffic.received[stack.name].append(
            _message_digest(message.src, message.data))
    traffic.done_ns[stack.name] = stack.sim.now


def spawn_traffic(scenario: ScaleoutScenario, system: Any) -> Traffic:
    """Start the workload on every CAB ``system`` materializes.

    Works unchanged for a full :class:`~repro.system.NectarSystem` and a
    :class:`~repro.scaleout.partition.PartitionSystem`: each process
    spawns senders and receivers only for the CAB stacks it owns, and
    the shift permutation guarantees every sender has exactly one remote
    or local partner expecting its messages.
    """
    names = scenario.fabric.cab_names
    index_of = {name: i for i, name in enumerate(names)}
    traffic = Traffic(scenario, system)
    # Construction order (the fabric's), not dict order, so partitioned
    # and single-process runs spawn threads in the same relative order.
    local = [name for name in names if name in system.cabs]
    for name in local:
        stack = system.cabs[name]
        stack.spawn(_receiver(scenario, stack, traffic),
                    name=f"{name}-escl-sink")
    for name in local:
        stack = system.cabs[name]
        stack.spawn(_sender(scenario, stack, index_of[name], traffic),
                    name=f"{name}-escl-src")
    return traffic


def merge_fragments(fragments: list[dict[str, Any]]) -> dict[str, Any]:
    """Union per-process fragments into the global fingerprint.

    Key sets are disjoint (each CAB and hub lives in exactly one
    partition), so a plain merge is exact; keys are sorted by the JSON
    canonicalisation in :func:`fingerprint_digest`.
    """
    merged: dict[str, dict] = {"delivered": {}, "content": {},
                               "done_ns": {}, "sent": {},
                               "hub_counters": {}}
    for fragment in fragments:
        for section, values in fragment.items():
            overlap = merged[section].keys() & values.keys()
            if overlap:
                raise ValueError(
                    f"fragment overlap in {section!r}: {sorted(overlap)}")
            merged[section].update(values)
    return merged


def fingerprint_digest(scenario_name: str,
                       fingerprint: dict[str, Any]) -> str:
    """The bit-identity contract: SHA-256 over the canonical JSON."""
    payload = json.dumps({"scenario": scenario_name,
                          "fingerprint": fingerprint}, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


_SCENARIOS: Optional[dict[str, ScaleoutScenario]] = None


def scenarios() -> dict[str, ScaleoutScenario]:
    """The E-SCL registry (built lazily; specs for 1k hubs take a beat)."""
    global _SCENARIOS
    if _SCENARIOS is None:
        entries = (
            ScaleoutScenario(
                "escl-torus-16", "2x2x2x2 torus, 16 CABs (test scale)",
                torus_fabric((2, 2, 2, 2))),
            ScaleoutScenario(
                "escl-torus-16-circuit",
                "2x2x2x2 torus, circuit-switched (replies cross cuts)",
                torus_fabric((2, 2, 2, 2)), message_bytes=2048,
                mode="circuit"),
            ScaleoutScenario(
                "escl-torus-64", "4x4x2x2 torus, 64 CABs (QCDSP-style)",
                torus_fabric((4, 4, 2, 2))),
            ScaleoutScenario(
                "escl-hypercube-64", "6-cube, 64 CABs (iPSC-style)",
                hypercube_fabric(6)),
            ScaleoutScenario(
                "escl-fattree-4", "4-ary fat tree, 16 CABs, 20 HUBs",
                fat_tree_fabric(4)),
            ScaleoutScenario(
                "escl-torus-256", "4x4x4x4 torus, 256 CABs",
                torus_fabric((4, 4, 4, 4)), messages_per_cab=2),
            ScaleoutScenario(
                "escl-torus-1024", "8x8x4x4 torus, 1024 CABs",
                torus_fabric((8, 8, 4, 4)), messages_per_cab=1),
        )
        _SCENARIOS = {entry.name: entry for entry in entries}
    return _SCENARIOS
