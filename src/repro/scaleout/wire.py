"""Cross-partition wire format: making frames safe to cross a pipe.

Packets and replies carry two things a :mod:`multiprocessing` pipe
cannot ship as-is:

* **Live hub references.**  ``Packet.reverse_path`` and
  ``Reply.info["route"]`` hold ``(Hub, port)`` tuples appended by
  :meth:`Packet.record_hop`; :meth:`Hub.route_reply` pops them with an
  identity check (``hub is not self`` raises).  Crossing a partition
  boundary, hubs are encoded as names; the receiving partition rebinds
  each name to its own ``Hub`` (or, for hubs it does not own, its
  shared proxy object — those entries are only ever popped after the
  reply crosses into the partition that owns them, so the identity
  check always sees the real local object).
* **Zero-copy payload views.**  Fragmented sends slice ``Payload.data``
  as :class:`memoryview`\\ s, which do not pickle; the boundary
  materializes them to ``bytes``.

Encoding happens at capture time (the item has permanently left the
sending partition, so in-place mutation is safe); decoding happens at
injection time in the receiving partition.

This split is also what makes the supervisor's window-log replay
(:mod:`repro.scaleout.supervisor`) sound: envelopes held in the
coordinator's per-partition logs stay in *encoded* form — names and
bytes, no live references — and decoding mutates only the receiving
worker's own unpickled copy, so re-sending a logged envelope to a
respawned worker is byte-for-byte identical to the first delivery.
"""

from __future__ import annotations

from typing import Any, Callable

from ..hardware.frames import Packet, Reply

__all__ = ["KIND_PACKET", "KIND_READY", "KIND_REPLY", "decode_item",
           "encode_item", "kind_of"]

#: Envelope kinds exchanged between partitions.
KIND_PACKET = "packet"
KIND_REPLY = "reply"
KIND_READY = "ready"


def kind_of(item: Any) -> str:
    """Classify a fiber-borne item for the envelope header."""
    if isinstance(item, Reply):
        return KIND_REPLY
    if isinstance(item, Packet):
        return KIND_PACKET
    raise TypeError(f"cannot ship {item!r} across a partition boundary")


def _encode_path(path: list) -> list:
    return [(hub if isinstance(hub, str) else hub.name, port)
            for hub, port in path]


def _decode_path(path: list, resolve: Callable[[str], Any]) -> list:
    return [(resolve(name), port) for name, port in path]


def encode_item(item: Any) -> Any:
    """Strip live references so ``item`` pickles; returns ``item``."""
    if isinstance(item, Packet):
        item.reverse_path = _encode_path(item.reverse_path)
        payload = item.payload
        if payload is not None and payload.data is not None \
                and not isinstance(payload.data, bytes):
            payload.data = bytes(payload.data)
    elif isinstance(item, Reply):
        route = item.info.get("route")
        if route:
            item.info["route"] = _encode_path(route)
    else:
        raise TypeError(f"cannot ship {item!r} across a partition boundary")
    return item


def decode_item(item: Any, resolve: Callable[[str], Any]) -> Any:
    """Rebind hub names to this partition's hub objects; returns ``item``.

    ``resolve`` maps a hub name to the local ``Hub`` (or proxy).
    """
    if isinstance(item, Packet):
        item.reverse_path = _decode_path(item.reverse_path, resolve)
    elif isinstance(item, Reply):
        route = item.info.get("route")
        if route:
            item.info["route"] = _decode_path(route, resolve)
    return item
