"""Cross-partition wire format and transport: frames across processes.

Two concerns live here.  The **codec** (:func:`encode_item` /
:func:`decode_item`) makes packets and replies safe to leave their
process; the **transport** (:class:`ShmRing` / :class:`Channel`) moves
the encoded bytes between the coordinator and its workers — either
straight through a :mod:`multiprocessing` pipe, or through a
shared-memory ring buffer with the pipe demoted to a doorbell.

Packets and replies carry two things a :mod:`multiprocessing` pipe
cannot ship as-is:

* **Live hub references.**  ``Packet.reverse_path`` and
  ``Reply.info["route"]`` hold ``(Hub, port)`` tuples appended by
  :meth:`Packet.record_hop`; :meth:`Hub.route_reply` pops them with an
  identity check (``hub is not self`` raises).  Crossing a partition
  boundary, hubs are encoded as names; the receiving partition rebinds
  each name to its own ``Hub`` (or, for hubs it does not own, its
  shared proxy object — those entries are only ever popped after the
  reply crosses into the partition that owns them, so the identity
  check always sees the real local object).
* **Zero-copy payload views.**  Fragmented sends slice ``Payload.data``
  as :class:`memoryview`\\ s, which do not pickle; the boundary
  materializes them to ``bytes``.

Encoding happens at capture time (the item has permanently left the
sending partition, so in-place mutation is safe); decoding happens at
injection time in the receiving partition.

This split is also what makes the supervisor's window-log replay
(:mod:`repro.scaleout.supervisor`) sound: envelopes held in the
coordinator's per-partition logs stay in *encoded* form — names and
bytes, no live references — and decoding mutates only the receiving
worker's own unpickled copy, so re-sending a logged envelope to a
respawned worker is byte-for-byte identical to the first delivery.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory
from typing import Any, Callable, Optional

from ..hardware.frames import Packet, Reply

__all__ = ["Channel", "KIND_PACKET", "KIND_READY", "KIND_REPLY",
           "ShmRing", "decode_item", "encode_item", "kind_of"]

#: Envelope kinds exchanged between partitions.
KIND_PACKET = "packet"
KIND_REPLY = "reply"
KIND_READY = "ready"


def kind_of(item: Any) -> str:
    """Classify a fiber-borne item for the envelope header."""
    if isinstance(item, Reply):
        return KIND_REPLY
    if isinstance(item, Packet):
        return KIND_PACKET
    raise TypeError(f"cannot ship {item!r} across a partition boundary")


def _encode_path(path: list) -> list:
    return [(hub if isinstance(hub, str) else hub.name, port)
            for hub, port in path]


def _decode_path(path: list, resolve: Callable[[str], Any]) -> list:
    return [(resolve(name), port) for name, port in path]


def encode_item(item: Any) -> Any:
    """Strip live references so ``item`` pickles; returns ``item``."""
    if isinstance(item, Packet):
        item.reverse_path = _encode_path(item.reverse_path)
        payload = item.payload
        if payload is not None and payload.data is not None \
                and not isinstance(payload.data, bytes):
            payload.data = bytes(payload.data)
    elif isinstance(item, Reply):
        route = item.info.get("route")
        if route:
            item.info["route"] = _encode_path(route)
    else:
        raise TypeError(f"cannot ship {item!r} across a partition boundary")
    return item


def decode_item(item: Any, resolve: Callable[[str], Any]) -> Any:
    """Rebind hub names to this partition's hub objects; returns ``item``.

    ``resolve`` maps a hub name to the local ``Hub`` (or proxy).
    """
    if isinstance(item, Packet):
        item.reverse_path = _decode_path(item.reverse_path, resolve)
    elif isinstance(item, Reply):
        route = item.info.get("route")
        if route:
            item.info["route"] = _decode_path(route, resolve)
    return item


# ----------------------------------------------------------------------
# shared-memory transport
# ----------------------------------------------------------------------

#: Default ring capacity per direction per worker.  One E-SCL advance
#: batch is a few kilobytes of envelope blocks; a megabyte leaves two
#: orders of magnitude of headroom before the pipe fallback fires.
DEFAULT_RING_BYTES = 1 << 20

#: Doorbell tags.  Deliberately unlike the protocol verbs ("advance",
#: "state", ...) so a raw pipe message — the worker's ``("error", tb)``
#: emergency path bypasses the ring — passes through :meth:`Channel.recv`
#: untouched.
_BLOCK = "shm-block"
_INLINE = "shm-inline"


class ShmRing:
    """A single-writer ring of length-prefixed pickled blocks.

    One :class:`multiprocessing.shared_memory.SharedMemory` segment per
    direction per worker, created by the supervisor *before* forking so
    the worker inherits the mapping — no name handshake, no attach race.
    The scale-out protocol is strictly lock-step (a sender never issues
    a second message before the previous one was consumed, see
    :class:`Channel`), so the ring needs no read cursor: the writer
    bumps a rolling offset, wraps when a block would overrun the end,
    and the exact ``(offset, length)`` of every block travels out of
    band in the pipe doorbell.
    """

    __slots__ = ("_shm", "_write")

    def __init__(self, size: int = DEFAULT_RING_BYTES) -> None:
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._write = 0

    @property
    def size(self) -> int:
        return self._shm.size

    def write(self, blob: bytes) -> Optional[int]:
        """Copy ``blob`` into the ring; return its offset.

        Returns ``None`` when the blob exceeds the whole ring — the
        caller falls back to shipping it inline through the pipe.
        """
        length = len(blob)
        if length > self._shm.size:
            return None
        offset = self._write
        if offset + length > self._shm.size:
            offset = 0
        self._shm.buf[offset:offset + length] = blob
        self._write = offset + length
        return offset

    def read(self, offset: int, length: int) -> bytes:
        """Materialize one block (bounds-checked against the segment)."""
        if not 0 <= offset <= offset + length <= self._shm.size:
            raise ValueError(
                f"shm block [{offset}:{offset + length}] outside ring "
                f"of {self._shm.size} bytes")
        return bytes(self._shm.buf[offset:offset + length])

    def close(self) -> None:
        """Unmap this process's view (both ends call this)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported view alive
            pass

    def unlink(self) -> None:
        """Free the segment (creator only — the supervisor, at reap)."""
        self._shm.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ShmRing {self._shm.name} {self._shm.size}B>"


class Channel:
    """One end of the coordinator <-> worker message channel.

    ``transport="pipe"`` is the bare pipe: every message is pickled by
    :mod:`multiprocessing` and copied through the kernel.  With rings
    attached (``transport="shm"``), the payload is batch-pickled once
    into the sender's transmit ring and only a three-field doorbell
    crosses the pipe — the receiver materializes the block from its own
    mapping of the same segment.  Blocks larger than the ring fall back
    to the inline pipe path, so correctness never depends on sizing.

    The pipe stays the control channel either way: the supervisor's
    multiplexed :func:`multiprocessing.connection.wait` watches pipe
    handles and process sentinels exactly as before, and a worker that
    dies mid-ring-write is harmless — the coordinator never touches a
    block it has not received a doorbell for.
    """

    __slots__ = ("pipe", "tx", "rx")

    def __init__(self, pipe: Any, tx: Optional[ShmRing] = None,
                 rx: Optional[ShmRing] = None) -> None:
        self.pipe = pipe
        self.tx = tx
        self.rx = rx

    def send(self, message: Any) -> None:
        if self.tx is None:
            self.pipe.send(message)
            return
        blob = pickle.dumps(message, pickle.HIGHEST_PROTOCOL)
        offset = self.tx.write(blob)
        if offset is None:
            self.pipe.send((_INLINE, message))
        else:
            self.pipe.send((_BLOCK, offset, len(blob)))

    def recv(self) -> Any:
        return self.decode(self.pipe.recv())

    def decode(self, message: Any) -> Any:
        """Resolve a doorbell into its payload (raw messages pass)."""
        if self.rx is not None and type(message) is tuple and message:
            if message[0] == _BLOCK:
                return pickle.loads(self.rx.read(message[1], message[2]))
            if message[0] == _INLINE:
                return message[1]
        return message
