"""Partitioned scale-out simulation for 1000+ node fabrics.

Shards a Nectar installation across worker processes — one partition per
HUB cluster group — synchronized with conservative lookahead equal to
the inter-HUB fiber propagation delay.  Each worker runs the unmodified
:mod:`repro.sim` engine over its own hubs and CAB stacks; a coordinator
exchanges timestamped envelope batches (shared-memory rings by default,
plain pipes as fallback) and grants each worker multi-window budgets
bounded by per-boundary lookahead.  Partitioned runs are bit-identical
(hard digest assert) to single-process runs of the same seeded
scenario.

The coordinator is crash-tolerant (:mod:`repro.scaleout.supervisor`):
workers that crash, hang, or get SIGKILLed by a chaos campaign are
respawned and their window log replayed to reconstruct bit-identical
state, with bounded restarts and per-partition forensics on failure.
Fault campaigns (:mod:`repro.faults`) apply partition-aware: in-sim
overlays slice to local targets, ``kill_worker`` events exercise the
recovery path.  See ``docs/SCALEOUT.md``.
"""

from .escl import (ScaleoutScenario, Traffic, fingerprint_digest,
                   merge_fragments, scenarios, spawn_traffic)
from .partition import (Partitioning, PartitionSystem, lookahead_matrix,
                        lookahead_ns, partition_fabric)
from .runner import ScaleoutResult, run_partitioned, run_single, verify
from .supervisor import (TRANSPORTS, Supervisor, SupervisorOutcome,
                         escl_campaign)

__all__ = [
    "Partitioning",
    "PartitionSystem",
    "ScaleoutResult",
    "ScaleoutScenario",
    "Supervisor",
    "SupervisorOutcome",
    "TRANSPORTS",
    "Traffic",
    "escl_campaign",
    "fingerprint_digest",
    "lookahead_matrix",
    "lookahead_ns",
    "merge_fragments",
    "partition_fabric",
    "run_partitioned",
    "run_single",
    "scenarios",
    "spawn_traffic",
    "verify",
]
