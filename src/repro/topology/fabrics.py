"""Large regular fabrics as pure-data specs (§7 scale-up; ROADMAP).

The classic builders in :mod:`repro.topology.builders` construct a live
:class:`~repro.system.NectarSystem` directly.  That is fine for a
handful of HUBs, but partitioned scale-out runs (:mod:`repro.scaleout`)
need every worker process to agree on the *exact* wiring — hub names,
port numbers, fiber names — without ever materializing the whole
system in one process.  A :class:`FabricSpec` is that agreement: a
frozen, picklable value object listing hubs, inter-HUB links with
explicit port assignments, and CAB attachment points.  Builders here
generate the three large regular families drawn from the related
machines:

* :func:`torus_fabric` — k-ary n-cube wraparound grids; at 4 dimensions
  this is the QCDSP arrangement (thousands of cheap nodes on a 4D
  torus).
* :func:`hypercube_fabric` — the iPSC arrangement (one dimension per
  link, 2**d nodes).
* :func:`fat_tree_fabric` — the k-ary fat tree (k pods of edge and
  aggregation switches under a (k/2)**2 core), the standard scalable
  alternative when uniform bisection bandwidth matters more than
  locality.

``build_system`` replays a spec into a normal finalized
:class:`~repro.system.NectarSystem`; the partitioned runtime replays
only one partition's slice of the same spec, so both worlds wire
byte-identical fabrics (fiber names seed the per-link fault RNG
streams, so the names matching is what makes partitioned runs
bit-identical to single-process runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..config import NectarConfig
from ..errors import TopologyError

__all__ = [
    "FabricSpec",
    "build_system",
    "fat_tree_fabric",
    "hypercube_fabric",
    "torus_fabric",
]


@dataclass(frozen=True)
class FabricSpec:
    """A complete wiring plan: hubs, inter-HUB links, CAB attachments.

    ``links`` entries are ``(hub_a, port_a, hub_b, port_b)`` — one
    bidirectional fiber pair each, ports explicit so every process that
    replays the spec wires identical names.  ``cabs`` entries are
    ``(cab_name, hub_name, port)``.
    """

    name: str
    hubs: tuple[str, ...]
    links: tuple[tuple[str, int, str, int], ...]
    cabs: tuple[tuple[str, str, int], ...]

    @property
    def cab_names(self) -> tuple[str, ...]:
        return tuple(cab for cab, _hub, _port in self.cabs)

    def hub_index(self) -> dict[str, int]:
        """Hub name -> position in construction order."""
        return {name: index for index, name in enumerate(self.hubs)}

    def adjacency(self) -> dict[str, set[str]]:
        """Hub-level neighbour sets (for reference BFS in tests)."""
        graph: dict[str, set[str]] = {hub: set() for hub in self.hubs}
        for hub_a, _pa, hub_b, _pb in self.links:
            graph[hub_a].add(hub_b)
            graph[hub_b].add(hub_a)
        return graph

    def validate(self, num_ports: int = 16) -> None:
        """Raise :class:`TopologyError` on port clashes or bad refs."""
        if len(set(self.hubs)) != len(self.hubs):
            raise TopologyError(f"{self.name}: duplicate hub names")
        used: dict[str, set[int]] = {hub: set() for hub in self.hubs}

        def claim(hub: str, port: int) -> None:
            if hub not in used:
                raise TopologyError(f"{self.name}: unknown hub {hub!r}")
            if not 0 <= port < num_ports:
                raise TopologyError(
                    f"{self.name}: {hub}.p{port} outside 0..{num_ports - 1}")
            if port in used[hub]:
                raise TopologyError(
                    f"{self.name}: {hub}.p{port} claimed twice")
            used[hub].add(port)

        for hub_a, port_a, hub_b, port_b in self.links:
            if hub_a == hub_b:
                raise TopologyError(f"{self.name}: self-link at {hub_a}")
            claim(hub_a, port_a)
            claim(hub_b, port_b)
        names = set()
        for cab, hub, port in self.cabs:
            if cab in names:
                raise TopologyError(f"{self.name}: duplicate CAB {cab!r}")
            names.add(cab)
            claim(hub, port)


class _PortLedger:
    """Lowest-free-port bookkeeping, mirroring NectarSystem._claim_port."""

    def __init__(self, num_ports: int) -> None:
        self.num_ports = num_ports
        self._used: dict[str, set[int]] = {}

    def claim(self, hub: str) -> int:
        used = self._used.setdefault(hub, set())
        for candidate in range(self.num_ports):
            if candidate not in used:
                used.add(candidate)
                return candidate
        raise TopologyError(f"{hub} has no free ports "
                            f"(all {self.num_ports} claimed)")


def _attach_cabs(hubs: list[str], cabs_per_hub: int, ledger: _PortLedger,
                 ) -> Iterator[tuple[str, str, int]]:
    for index, hub in enumerate(hubs):
        for k in range(cabs_per_hub):
            suffix = f"_{k}" if cabs_per_hub > 1 else ""
            yield (f"cab{index}{suffix}", hub, ledger.claim(hub))


def torus_fabric(dims: tuple[int, ...], cabs_per_hub: int = 1,
                 num_ports: int = 16) -> FabricSpec:
    """A k-ary n-cube: HUB grid with wraparound links in every dimension.

    ``dims`` gives the extent of each dimension; 4-tuple dims model the
    QCDSP 4D torus.  A dimension of extent 2 contributes a single link
    per pair (the wraparound would duplicate it); extent-1 dimensions
    contribute none.  Port budget per hub: 2 links per dimension of
    extent >= 3, 1 per extent-2 dimension, plus ``cabs_per_hub``.
    """
    if not dims or any(d < 1 for d in dims):
        raise TopologyError(f"bad torus dimensions {dims!r}")
    link_ports = sum(2 if d >= 3 else (1 if d == 2 else 0) for d in dims)
    if link_ports + cabs_per_hub > num_ports:
        raise TopologyError(
            f"torus{dims} needs {link_ports} link ports + {cabs_per_hub} "
            f"CAB ports per hub; a {num_ports}-port HUB cannot host that")

    def coords() -> Iterator[tuple[int, ...]]:
        total = 1
        for d in dims:
            total *= d
        for flat in range(total):
            coordinate = []
            rest = flat
            for d in reversed(dims):
                coordinate.append(rest % d)
                rest //= d
            yield tuple(reversed(coordinate))

    def hub_name(coordinate: tuple[int, ...]) -> str:
        return "hub_" + "_".join(str(c) for c in coordinate)

    hubs = [hub_name(c) for c in coords()]
    ledger = _PortLedger(num_ports)
    links = []
    for coordinate in coords():
        for axis, extent in enumerate(dims):
            if extent < 2:
                continue
            neighbour = list(coordinate)
            neighbour[axis] = (coordinate[axis] + 1) % extent
            neighbour = tuple(neighbour)
            if extent == 2 and coordinate[axis] == 1:
                continue  # wraparound would duplicate the extent-2 link
            here, there = hub_name(coordinate), hub_name(neighbour)
            links.append((here, ledger.claim(here),
                          there, ledger.claim(there)))
    cabs = tuple(_attach_cabs(hubs, cabs_per_hub, ledger))
    spec = FabricSpec(name="torus" + "x".join(str(d) for d in dims),
                      hubs=tuple(hubs), links=tuple(links), cabs=cabs)
    spec.validate(num_ports)
    return spec


def hypercube_fabric(dim: int, cabs_per_hub: int = 1,
                     num_ports: int = 16) -> FabricSpec:
    """A binary hypercube of ``2**dim`` HUBs — the iPSC arrangement.

    Hub ``hub_i`` links to every ``hub_j`` with ``j = i ^ (1 << axis)``;
    link ports are claimed in axis order, so hub ``i`` talks over axis
    ``a`` on a deterministic port every run.
    """
    if dim < 0:
        raise TopologyError(f"negative hypercube dimension {dim}")
    if dim + cabs_per_hub > num_ports:
        raise TopologyError(
            f"a {num_ports}-port HUB cannot host {dim} hypercube links "
            f"plus {cabs_per_hub} CABs")
    count = 1 << dim
    hubs = [f"hub_{i}" for i in range(count)]
    ledger = _PortLedger(num_ports)
    links = []
    for i in range(count):
        for axis in range(dim):
            j = i ^ (1 << axis)
            if j < i:
                continue  # each pair wired once, from the lower index
            links.append((hubs[i], ledger.claim(hubs[i]),
                          hubs[j], ledger.claim(hubs[j])))
    cabs = tuple(_attach_cabs(hubs, cabs_per_hub, ledger))
    spec = FabricSpec(name=f"hypercube{dim}", hubs=tuple(hubs),
                      links=tuple(links), cabs=cabs)
    spec.validate(num_ports)
    return spec


def fat_tree_fabric(k: int, num_ports: int = 16) -> FabricSpec:
    """A k-ary fat tree: k pods, (k/2)**2 cores, k**3/4 CAB slots.

    Edge switch ``e`` of pod ``p`` hosts ``k/2`` CABs and uplinks to
    every aggregation switch in its pod; aggregation switch ``a`` of pod
    ``p`` uplinks to cores ``a*(k/2) .. a*(k/2)+k/2-1``.  ``k`` must be
    even and at most ``num_ports`` (each switch uses exactly k ports).
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat tree arity must be even and >= 2, not {k}")
    if k > num_ports:
        raise TopologyError(
            f"fat tree arity {k} exceeds the {num_ports}-port HUB")
    half = k // 2
    cores = [f"core_{i}" for i in range(half * half)]
    aggs = [[f"agg_{p}_{a}" for a in range(half)] for p in range(k)]
    edges = [[f"edge_{p}_{e}" for e in range(half)] for p in range(k)]
    hubs = cores + [name for pod in aggs for name in pod] \
        + [name for pod in edges for name in pod]
    ledger = _PortLedger(num_ports)
    links = []
    for p in range(k):
        for a in range(half):
            for c in range(half):
                core = cores[a * half + c]
                links.append((aggs[p][a], ledger.claim(aggs[p][a]),
                              core, ledger.claim(core)))
            for e in range(half):
                links.append((edges[p][e], ledger.claim(edges[p][e]),
                              aggs[p][a], ledger.claim(aggs[p][a])))
    cabs = []
    index = 0
    for p in range(k):
        for e in range(half):
            for _h in range(half):
                cabs.append((f"cab{index}", edges[p][e],
                             ledger.claim(edges[p][e])))
                index += 1
    spec = FabricSpec(name=f"fattree{k}", hubs=tuple(hubs),
                      links=tuple(links), cabs=tuple(cabs))
    spec.validate(num_ports)
    return spec


def build_system(spec: FabricSpec, cfg: Optional[NectarConfig] = None):
    """Replay a spec into a finalized single-process NectarSystem."""
    from ..system.builder import NectarSystem
    system = NectarSystem(cfg)
    spec.validate(system.cfg.hub.num_ports)
    hubs = {name: system.add_hub(name) for name in spec.hubs}
    for hub_a, port_a, hub_b, port_b in spec.links:
        system.connect_hubs(hubs[hub_a], hubs[hub_b],
                            port_a=port_a, port_b=port_b)
    for cab, hub, port in spec.cabs:
        system.add_cab(cab, hubs[hub], port=port)
    return system.finalize()
