"""Topology builders: single-HUB, chains, 2-D meshes, Figure 7 (§3.1)."""

from .builders import (dual_link_system, figure7_system, linear_system,
                       mesh_system, single_hub_system)

__all__ = ["dual_link_system", "figure7_system", "linear_system",
           "mesh_system", "single_hub_system"]
