"""Topology builders: single-HUB, chains, meshes, large fabrics (§3.1)."""

from .builders import (dual_link_system, fat_tree_system, figure7_system,
                       hypercube_system, linear_system, mesh_system,
                       single_hub_system, torus_system)
from .fabrics import (FabricSpec, build_system, fat_tree_fabric,
                      hypercube_fabric, torus_fabric)

__all__ = ["FabricSpec", "build_system", "dual_link_system",
           "fat_tree_fabric", "fat_tree_system", "figure7_system",
           "hypercube_fabric", "hypercube_system", "linear_system",
           "mesh_system", "single_hub_system", "torus_fabric",
           "torus_system"]
