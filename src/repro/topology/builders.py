"""Canonical topologies from the paper's figures (§3.1, Figures 2–4, 7).

Every builder returns a finalized :class:`~repro.system.NectarSystem`.
"""

from __future__ import annotations

from typing import Optional

from ..config import NectarConfig
from ..errors import TopologyError
from ..system.builder import NectarSystem


def single_hub_system(num_cabs: int,
                      cfg: Optional[NectarConfig] = None,
                      with_nodes: bool = False) -> NectarSystem:
    """Figure 2: one HUB with ``num_cabs`` CABs on its I/O ports."""
    system = NectarSystem(cfg)
    hub = system.add_hub("hub0")
    if num_cabs > hub.cfg.num_ports:
        raise TopologyError(
            f"a {hub.cfg.num_ports}-port HUB cannot host {num_cabs} CABs")
    for index in range(num_cabs):
        cab = system.add_cab(f"cab{index}", hub)
        if with_nodes:
            system.add_node(f"node{index}", cab)
    return system.finalize()


def linear_system(num_hubs: int, cabs_per_hub: int,
                  cfg: Optional[NectarConfig] = None) -> NectarSystem:
    """A chain of HUBs — the simplest multi-hop arrangement."""
    if num_hubs < 1:
        raise TopologyError("need at least one hub")
    system = NectarSystem(cfg)
    hubs = [system.add_hub(f"hub{i}") for i in range(num_hubs)]
    for left, right in zip(hubs, hubs[1:]):
        system.connect_hubs(left, right)
    for hub_index, hub in enumerate(hubs):
        for cab_index in range(cabs_per_hub):
            system.add_cab(f"cab{hub_index}_{cab_index}", hub)
    return system.finalize()


def mesh_system(rows: int, cols: int, cabs_per_hub: int,
                cfg: Optional[NectarConfig] = None) -> NectarSystem:
    """Figure 4: HUB clusters connected in a 2-D mesh."""
    if rows < 1 or cols < 1:
        raise TopologyError("mesh needs positive dimensions")
    system = NectarSystem(cfg)
    grid = [[system.add_hub(f"hub_{r}_{c}") for c in range(cols)]
            for r in range(rows)]
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                system.connect_hubs(grid[r][c], grid[r][c + 1])
            if r + 1 < rows:
                system.connect_hubs(grid[r][c], grid[r + 1][c])
    for r in range(rows):
        for c in range(cols):
            for k in range(cabs_per_hub):
                system.add_cab(f"cab_{r}_{c}_{k}", grid[r][c])
    return system.finalize()


def dual_link_system(cabs_per_hub: int, links: int = 2,
                     cfg: Optional[NectarConfig] = None) -> NectarSystem:
    """Two HUBs joined by ``links`` parallel fiber pairs (§3.1).

    "There is no a priori restriction on how many links can be used for
    inter-HUB connections" — this is the minimal topology where one
    inter-HUB link can die while an alternate path survives, so it is
    the canonical testbed for self-healing routing.  Link ``k`` occupies
    port ``k`` on both HUBs; CABs are named ``cab<hub>_<index>``.
    """
    if links < 1:
        raise TopologyError("need at least one inter-HUB link")
    system = NectarSystem(cfg)
    hub0 = system.add_hub("hub0")
    hub1 = system.add_hub("hub1")
    for _ in range(links):
        system.connect_hubs(hub0, hub1)
    for hub_index, hub in enumerate((hub0, hub1)):
        for cab_index in range(cabs_per_hub):
            system.add_cab(f"cab{hub_index}_{cab_index}", hub)
    return system.finalize()


def torus_system(dims: tuple[int, ...], cabs_per_hub: int = 1,
                 cfg: Optional[NectarConfig] = None) -> NectarSystem:
    """A k-ary n-cube of HUB clusters (QCDSP-style at 4 dimensions).

    ``dims`` is the extent per dimension, e.g. ``(4, 4, 2, 2)`` for the
    64-hub 4D torus the E-SCL scenarios run on.  See
    :func:`repro.topology.fabrics.torus_fabric` for the wiring rules.
    """
    from .fabrics import build_system, torus_fabric
    return build_system(torus_fabric(dims, cabs_per_hub=cabs_per_hub),
                        cfg=cfg)


def hypercube_system(dim: int, cabs_per_hub: int = 1,
                     cfg: Optional[NectarConfig] = None) -> NectarSystem:
    """A binary hypercube of ``2**dim`` HUBs (iPSC-style)."""
    from .fabrics import build_system, hypercube_fabric
    return build_system(hypercube_fabric(dim, cabs_per_hub=cabs_per_hub),
                        cfg=cfg)


def fat_tree_system(k: int,
                    cfg: Optional[NectarConfig] = None) -> NectarSystem:
    """A k-ary fat tree: k pods under a ``(k/2)**2`` core layer."""
    from .fabrics import build_system, fat_tree_fabric
    return build_system(fat_tree_fabric(k), cfg=cfg)


def figure7_system(cfg: Optional[NectarConfig] = None) -> NectarSystem:
    """The 4-HUB system of Figure 7, with the paper's port assignments.

    * CAB3 on HUB2.p4; HUB2.p8 ↔ HUB1.p3; CAB1 on HUB1.p8 — so the
      circuit example "open HUB2 P8 / open-with-reply HUB1 P8" routes
      CAB3 → CAB1 (§4.2.1).
    * CAB2 on HUB1.p1; HUB1.p6 ↔ HUB4.p1; CAB4 on HUB4.p5;
      HUB4.p3 ↔ HUB3.p6; CAB5 on HUB3.p4 — so the multicast example
      "open HUB1 P6 / open-reply HUB4 P5 / open HUB4 P3 / open-reply
      HUB3 P4" reaches CAB4 and CAB5 (§4.2.2).
    """
    system = NectarSystem(cfg)
    hub1 = system.add_hub("HUB1")
    hub2 = system.add_hub("HUB2")
    hub3 = system.add_hub("HUB3")
    hub4 = system.add_hub("HUB4")
    system.connect_hubs(hub2, hub1, port_a=8, port_b=3)
    system.connect_hubs(hub1, hub4, port_a=6, port_b=1)
    system.connect_hubs(hub4, hub3, port_a=3, port_b=6)
    system.add_cab("CAB1", hub1, port=8)
    system.add_cab("CAB2", hub1, port=1)
    system.add_cab("CAB3", hub2, port=4)
    system.add_cab("CAB4", hub4, port=5)
    system.add_cab("CAB5", hub3, port=4)
    return system.finalize()
