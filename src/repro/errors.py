"""Exception hierarchy for the Nectar reproduction."""

from __future__ import annotations

__all__ = [
    "NectarError", "ConfigError", "TopologyError", "RouteError",
    "HubCommandError", "DatalinkError", "TransportError", "ChecksumError",
    "MailboxError", "ProtectionFault", "AllocationError", "NodeError",
    "NectarineError", "WorkloadError", "ObserveError", "CollectiveError",
    "ScaleoutError"
]


class NectarError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(NectarError):
    """A configuration parameter is invalid or inconsistent."""


class TopologyError(NectarError):
    """Invalid wiring: bad port, duplicate attachment, unknown element."""


class RouteError(NectarError):
    """No route exists between the requested endpoints."""


class HubCommandError(NectarError):
    """A HUB command could not be executed (bad port, bad target hub)."""


class DatalinkError(NectarError):
    """The datalink layer exhausted its recovery attempts."""


class TransportError(NectarError):
    """A transport protocol failed to deliver (after retries, if any)."""


class ChecksumError(TransportError):
    """A packet failed checksum verification."""


class MailboxError(NectarError):
    """Invalid mailbox operation (closed mailbox, exhausted space)."""


class ProtectionFault(NectarError):
    """A memory access violated the CAB page-protection tables."""


class AllocationError(NectarError):
    """A memory region could not satisfy an allocation request."""


class NodeError(NectarError):
    """Invalid operation on a node host or node process."""


class NectarineError(NectarError):
    """Invalid use of the Nectarine task/message API."""


class WorkloadError(NectarError):
    """Invalid workload specification (pattern, arrivals, sweep)."""


class ObserveError(NectarError):
    """Invalid observability operation (duplicate metric, bad probe)."""


class CollectiveError(NectarError):
    """A collective operation failed or timed out (never hangs)."""


class ScaleoutError(NectarError):
    """A partitioned scale-out run could not be completed.

    Raised by the crash-tolerant coordinator when a worker's restart
    budget is exhausted (or a worker process leaks past SIGKILL).
    Carries ``forensics``: one dict per partition with the last window
    reached, events processed, restart count, exit code, and the recorded
    failure history — everything the post-mortem needs.
    """

    def __init__(self, message: str, forensics: list | None = None) -> None:
        super().__init__(message)
        self.forensics = forensics or []
