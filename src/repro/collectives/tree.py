"""k-ary tree shapes for software collectives.

The software fallback arranges ranks in a complete k-ary tree (arity
``cfg.collectives.fanout``) rooted at any rank: ranks are remapped to
*virtual* ranks ``v = (r - root) % n`` so the standard heap layout
(children of ``v`` are ``v*k+1 .. v*k+k``) works for every root.  Depth
is ``log_k(n)``, so a 6-rank group with fanout 4 completes in two
levels where dimension exchange would need a power-of-two rank count.
"""

from __future__ import annotations

__all__ = ["tree_parent", "tree_children", "tree_depth"]


def _virtual(rank: int, n: int, root: int) -> int:
    return (rank - root) % n


def _actual(virtual: int, n: int, root: int) -> int:
    return (virtual + root) % n


def tree_parent(rank: int, n: int, fanout: int, root: int = 0):
    """Parent of ``rank`` in the k-ary tree, or ``None`` for the root."""
    virtual = _virtual(rank, n, root)
    if virtual == 0:
        return None
    return _actual((virtual - 1) // fanout, n, root)


def tree_children(rank: int, n: int, fanout: int,
                  root: int = 0) -> list[int]:
    """Children of ``rank`` in the k-ary tree (possibly empty)."""
    virtual = _virtual(rank, n, root)
    first = virtual * fanout + 1
    return [_actual(child, n, root)
            for child in range(first, min(first + fanout, n))]


def tree_depth(n: int, fanout: int) -> int:
    """Levels below the root (0 for a single-rank group)."""
    depth = 0
    reach = 1
    width = fanout
    while reach < n:
        reach += width
        width *= fanout
        depth += 1
    return depth
