"""repro.collectives: HUB-offloaded and software collective operations.

The HUB's central controller gains combining primitives (fetch-and-add,
barrier, reduce — see :mod:`repro.hardware.hub_collectives`);
:class:`CollectiveGroup` plans reduction/broadcast trees over the HUB
mesh and exposes ``barrier``/``allreduce``/``broadcast``/``scatter``/
``gather``/``allgather``/``fetch_add`` over Nectarine tasks, with a
pure-software k-ary tree fallback for any rank count and placement.
See ``docs/COLLECTIVES.md``.
"""

from .group import CollectiveGroup
from .tree import tree_children, tree_depth, tree_parent

__all__ = ["CollectiveGroup", "tree_children", "tree_depth", "tree_parent"]
