"""CollectiveGroup: collective operations over Nectarine tasks.

A group is a fixed, ordered set of tasks (ranks).  Operations are SPMD:
every rank's body calls the same collectives in the same order, each
call is a generator, and per-rank sequence numbers give matching epochs
without any out-of-band agreement.

Two execution modes (``cfg.collectives.mode``, override per group):

* ``hub`` — barrier/allreduce are *in-network*: every rank issues one
  ``SV_BARRIER``/``SV_REDUCE`` to its attached HUB, the HUBs combine
  through a reduction tree planned here from the router's topology
  tables, and the release fans back over reverse-path replies.  One
  command each way per rank, no software message processing on the hot
  path.  ``broadcast`` uses the HUB's hardware multicast (§4.2.2).
* ``tree`` — pure software: k-ary trees of datagrams between the
  member tasks.  Works for any rank count and any placement; this is
  also the automatic fallback whenever the HUB path cannot serve
  (node-resident tasks, ranks sharing a CAB for multicast).

Every blocking step carries a deadline: a collective completes or
raises :class:`~repro.errors.CollectiveError` — it never hangs, even
under fault-injection campaigns.
"""

from __future__ import annotations

from collections import Counter
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from ..errors import CollectiveError
from ..hardware.frames import Payload
from ..hardware.hub_collectives import REDUCE_OPS
from ..hardware.hub_commands import CommandOp
from .tree import tree_children, tree_parent

__all__ = ["CollectiveGroup"]

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.mailbox import Mailbox, Message
    from ..nectarine.api import Task
    from ..system.builder import NectarSystem


def _next_gid(system: "NectarSystem") -> int:
    # Per-system, so back-to-back runs of the same scenario allocate
    # identical group ids (a module-global counter would leak across
    # simulations and break byte-identical schedules).
    counter = getattr(system, "_collective_gids", None)
    if counter is None:
        counter = count(1)
        system._collective_gids = counter
    return next(counter)


def _pack(parts: dict[int, bytes]) -> bytes:
    """Frame rank-tagged byte strings (4-byte rank, 4-byte length)."""
    return b"".join(
        rank.to_bytes(4, "little") + len(body).to_bytes(4, "little") + body
        for rank, body in sorted(parts.items()))


def _unpack(blob: bytes) -> dict[int, bytes]:
    parts: dict[int, bytes] = {}
    offset = 0
    while offset < len(blob):
        rank = int.from_bytes(blob[offset:offset + 4], "little")
        length = int.from_bytes(blob[offset + 4:offset + 8], "little")
        offset += 8
        parts[rank] = blob[offset:offset + length]
        offset += length
    return parts


class CollectiveGroup:
    """A fixed set of ranks with barrier/reduce/broadcast semantics."""

    def __init__(self, tasks: Sequence["Task"],
                 mode: Optional[str] = None,
                 name: Optional[str] = None) -> None:
        if not tasks:
            raise CollectiveError("a collective group needs at least 1 rank")
        self.tasks = list(tasks)
        self.n = len(self.tasks)
        self.system: "NectarSystem" = self.tasks[0].runtime.system
        self.sim = self.system.sim
        self.cfg = self.system.cfg
        self.router = self.system.router
        self.fanout = self.cfg.collectives.fanout
        self.gid = _next_gid(self.system)
        self.name = name or f"group{self.gid}"
        requested = mode or self.cfg.collectives.mode
        if requested not in ("hub", "tree", "exchange"):
            raise CollectiveError(f"unknown collective mode {requested!r}")
        if requested == "exchange":
            # Dimension exchange lives in the iPSC library; as a group
            # mode it means "software", i.e. the k-ary tree.
            requested = "tree"
        if requested == "hub" and not all(t.on_cab for t in self.tasks):
            # Node-resident tasks cannot issue HUB commands directly.
            requested = "tree"
        self.mode = requested
        #: Per-rank collective sequence numbers (SPMD discipline makes
        #: them agree; they double as the HUB-side epoch).
        self._seqs = [0] * self.n
        cab_names = [t.cab.name for t in self.tasks]
        self._unique_cabs = len(set(cab_names)) == self.n
        self._hub_tree: Optional[dict[str, Any]] = None
        self._root_hub: Optional[str] = None
        self._bcast_boxes: list[Optional["Mailbox"]] = [None] * self.n
        if self.mode == "hub":
            self._hub_tree, self._root_hub = self._build_hub_tree()
            if self._unique_cabs and self.n > 1:
                # Hardware multicast delivers one identical byte stream
                # to every destination, so the landing mailbox must have
                # one name on every member CAB (needs distinct CABs).
                for index, task in enumerate(self.tasks):
                    self._bcast_boxes[index] = task.cab.create_mailbox(
                        f"coll:{self.gid}")

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def _build_hub_tree(self) -> tuple[dict[str, Any], str]:
        """Reduction tree over the HUB mesh, rooted at rank 0's HUB.

        Each member HUB's shortest path to the root contributes parent
        edges (subpaths of BFS shortest paths are shortest, so parent
        pointers always reduce distance to the root — no cycles).  A
        HUB's expected-arrival count is its local members plus its child
        HUBs; pure transit HUBs get entries with zero local members.
        """
        members: Counter = Counter()
        for task in self.tasks:
            hub, _port = self.router.cab_location(task.cab.name)
            members[hub.name] += 1
        root_hub, _port = self.router.cab_location(self.tasks[0].cab.name)
        root = root_hub.name
        edges: dict[str, str] = {}
        for hub_name in sorted(members):
            path = self.router.hub_path(hub_name, root)
            for child, parent in zip(path, path[1:]):
                edges[child] = parent
        child_counts: Counter = Counter(edges.values())
        spec: dict[str, Any] = {}
        for hub_name in sorted(set(members) | set(edges) | {root}):
            entry: dict[str, Any] = {
                "expected": members.get(hub_name, 0)
                + child_counts.get(hub_name, 0),
            }
            parent = edges.get(hub_name)
            if parent is None:
                entry["parent"] = None
                entry["parent_hub"] = None
            else:
                port_here, _far = self.router.parallel_links(
                    hub_name, parent)[0]
                entry["parent"] = port_here
                entry["parent_hub"] = parent
            spec[hub_name] = entry
        return spec, root

    def _next_seq(self, rank: int) -> int:
        seq = self._seqs[rank]
        self._seqs[rank] += 1
        return seq

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n:
            raise CollectiveError(f"{self.name} has no rank {rank}")

    # ------------------------------------------------------------------
    # collective operations (generators; call from the rank's task body)
    # ------------------------------------------------------------------

    def barrier(self, rank: int):
        """Block until every rank has entered this barrier."""
        self._check_rank(rank)
        seq = self._next_seq(rank)
        if self.n == 1:
            return None
        if self.mode == "hub":
            yield from self._hub_join(rank, CommandOp.SV_BARRIER, seq,
                                      None, "sum")
            return None
        yield from self._tree_combine(rank, seq, None, "sum")
        return None

    def allreduce(self, rank: int, value: int, op: str = "sum"):
        """Combine one integer per rank; every rank gets the result."""
        self._check_rank(rank)
        if op not in REDUCE_OPS:
            raise CollectiveError(f"unknown reduce op {op!r}")
        seq = self._next_seq(rank)
        if self.n == 1:
            return value
        if self.mode == "hub":
            reply = yield from self._hub_join(rank, CommandOp.SV_REDUCE,
                                              seq, value, op)
            return reply.info["value"]
        result = yield from self._tree_combine(rank, seq, value, op)
        return result

    def broadcast(self, rank: int, data: Optional[bytes] = None,
                  root: int = 0):
        """Send ``data`` from ``root`` to every rank; all return it."""
        self._check_rank(rank)
        self._check_rank(root)
        seq = self._next_seq(rank)
        if rank == root and data is None:
            raise CollectiveError("broadcast root must supply data")
        if self.n == 1:
            return bytes(data)
        if self.mode == "hub" and self._unique_cabs:
            result = yield from self._hub_broadcast(rank, data, root, seq)
        else:
            result = yield from self._tree_broadcast(rank, data, root, seq)
        return result

    def scatter(self, rank: int, chunks: Optional[Sequence[bytes]] = None,
                root: int = 0):
        """Send ``chunks[i]`` from ``root`` to rank ``i``."""
        self._check_rank(rank)
        self._check_rank(root)
        seq = self._next_seq(rank)
        if rank == root:
            if chunks is None or len(chunks) != self.n:
                raise CollectiveError(
                    f"scatter root needs exactly {self.n} chunks")
            for peer in range(self.n):
                if peer != root:
                    yield from self._send(rank, peer, "scat",
                                          bytes(chunks[peer]), seq)
            return bytes(chunks[root])
        message = yield from self._timed_receive(
            rank, self._match(seq, "scat", root))
        return message.data

    def gather(self, rank: int, data: bytes, root: int = 0):
        """Collect every rank's bytes at ``root`` (others return None)."""
        self._check_rank(rank)
        self._check_rank(root)
        seq = self._next_seq(rank)
        if rank != root:
            yield from self._send(rank, root, "gath", bytes(data), seq)
            return None
        parts = {root: bytes(data)}
        for peer in range(self.n):
            if peer == root:
                continue
            message = yield from self._timed_receive(
                rank, self._match(seq, "gath", peer))
            parts[peer] = message.data
        return [parts[peer] for peer in range(self.n)]

    def allgather(self, rank: int, data: bytes):
        """Every rank gets the list of every rank's bytes.

        Software k-ary merge up to rank 0, then one broadcast down — in
        ``hub`` mode the down phase is the HUB's hardware multicast.
        """
        self._check_rank(rank)
        if self.n == 1:
            return [bytes(data)]
        seq = self._next_seq(rank)
        parts = {rank: bytes(data)}
        for child in tree_children(rank, self.n, self.fanout):
            message = yield from self._timed_receive(
                rank, self._match(seq, "up", child))
            parts.update(_unpack(message.data))
        parent = tree_parent(rank, self.n, self.fanout)
        blob: Optional[bytes] = None
        if parent is None:
            blob = _pack(parts)
        else:
            yield from self._send(rank, parent, "up", _pack(parts), seq)
        blob = yield from self.broadcast(rank, blob, root=0)
        parts = _unpack(blob)
        return [parts[peer] for peer in range(self.n)]

    def fetch_add(self, rank: int, register: int, delta: int = 1):
        """Atomic fetch-and-add on a register homed on the root HUB."""
        self._check_rank(rank)
        if self.mode != "hub":
            raise CollectiveError(
                "fetch-and-add is a HUB register operation; the group "
                "runs in software mode")
        task = self.tasks[rank]
        datalink = task.cab.datalink
        local_hub, _port = self.router.cab_location(task.cab.name)
        arg = {"delta": delta}
        if local_hub.name == self._root_hub:
            reply = yield from datalink.collective_command(
                CommandOp.SV_FETCH_ADD, param=register, arg=arg)
        else:
            reply = yield from datalink.collective_command_at(
                self._root_hub, CommandOp.SV_FETCH_ADD,
                param=register, arg=arg)
        return reply.info["value"]

    def reset(self, rank: int = 0):
        """Supervisor cleanup: clear this group's HUB state everywhere."""
        self._check_rank(rank)
        if self.mode != "hub":
            return None
        datalink = self.tasks[rank].cab.datalink
        for hub_name in sorted(self._hub_tree):
            local_hub, _port = self.router.cab_location(
                self.tasks[rank].cab.name)
            if hub_name == local_hub.name:
                yield from datalink.collective_command(
                    CommandOp.SV_COLL_RESET, param=self.gid)
            else:
                yield from datalink.collective_command_at(
                    hub_name, CommandOp.SV_COLL_RESET, param=self.gid)
        return None

    # ------------------------------------------------------------------
    # HUB-offloaded paths
    # ------------------------------------------------------------------

    def _hub_join(self, rank: int, op: CommandOp, epoch: int,
                  value: Optional[int], reduce_op: str):
        datalink = self.tasks[rank].cab.datalink
        arg: dict[str, Any] = {"epoch": epoch, "op": reduce_op,
                               "tree": self._hub_tree}
        if value is not None:
            arg["value"] = value
        reply = yield from datalink.collective_command(
            op, param=self.gid, arg=arg)
        if not reply.ok:
            raise CollectiveError(
                f"{self.name}: {op.name} epoch {epoch} failed: "
                f"{reply.info.get('reason', 'refused')}")
        return reply

    def _hub_broadcast(self, rank: int, data: Optional[bytes],
                       root: int, seq: int):
        """One hardware multicast from the root's CAB (§4.2.2)."""
        if rank == root:
            body = bytes(data)
            root_cab = self.tasks[root].cab
            header = {
                "proto": "dg", "dst_mailbox": f"coll:{self.gid}",
                "kind": "data", "msg_id": f"coll:{self.gid}:{seq}",
                "frag": 0, "nfrags": 1, "total_size": len(body),
                "src": root_cab.name,
                "meta": {"coll": self.gid, "cseq": seq,
                         "ckind": "bcast", "csrc": root},
            }
            payload = Payload(len(body), data=body, header=header)
            destinations = [task.cab.name
                            for index, task in enumerate(self.tasks)
                            if index != root]
            yield from root_cab.datalink.multicast(destinations, payload,
                                                   mode="auto")
            return body
        message = yield from self._timed_receive(
            rank, self._match(seq, "bcast", root),
            mailbox=self._bcast_boxes[rank])
        return message.data

    # ------------------------------------------------------------------
    # software k-ary tree paths
    # ------------------------------------------------------------------

    def _tree_combine(self, rank: int, seq: int, value: Optional[int],
                      op: str):
        """Reduce up the tree (rooted at rank 0), fan the result down.

        ``value is None`` is the barrier: only arrival matters and the
        release carries no operand.
        """
        fold: Callable[[int, int], int] = REDUCE_OPS[op]
        total = value
        for child in tree_children(rank, self.n, self.fanout):
            message = yield from self._timed_receive(
                rank, self._match(seq, "up", child))
            if value is not None:
                operand = int(message.data.decode())
                total = operand if total is None else fold(total, operand)
        parent = tree_parent(rank, self.n, self.fanout)
        if parent is not None:
            body = b"\0" if value is None else str(total).encode()
            yield from self._send(rank, parent, "up", body, seq)
            message = yield from self._timed_receive(
                rank, self._match(seq, "down", parent))
            total = None if value is None else int(message.data.decode())
        result_body = b"\0" if value is None else str(total).encode()
        for child in tree_children(rank, self.n, self.fanout):
            yield from self._send(rank, child, "down", result_body, seq)
        return total

    def _tree_broadcast(self, rank: int, data: Optional[bytes],
                        root: int, seq: int):
        parent = tree_parent(rank, self.n, self.fanout, root)
        if parent is None:
            body = bytes(data)
        else:
            message = yield from self._timed_receive(
                rank, self._match(seq, "bcast", parent))
            body = message.data
        for child in tree_children(rank, self.n, self.fanout, root):
            yield from self._send(rank, child, "bcast", body, seq)
        return body

    # ------------------------------------------------------------------
    # messaging plumbing
    # ------------------------------------------------------------------

    def _match(self, seq: int, kind: str, src_rank: int):
        gid = self.gid

        def predicate(message: "Message") -> bool:
            meta = message.meta
            return (meta.get("coll") == gid and meta.get("cseq") == seq
                    and meta.get("ckind") == kind
                    and meta.get("csrc") == src_rank)
        return predicate

    def _send(self, rank: int, dst_rank: int, kind: str, body: bytes,
              seq: int):
        src, dst = self.tasks[rank], self.tasks[dst_rank]
        yield from src.cab.transport.datagram.send(
            dst.cab.name, dst.mailbox.name, data=body, size=len(body),
            meta={"coll": self.gid, "cseq": seq, "ckind": kind,
                  "csrc": rank})

    def _timed_receive(self, rank: int,
                       predicate: Callable[["Message"], bool],
                       mailbox: Optional["Mailbox"] = None):
        """A mailbox read with a deadline: message or CollectiveError."""
        task = self.tasks[rank]
        box = mailbox if mailbox is not None else task.mailbox
        kernel = task.cab.kernel
        event = box.get_match(predicate)
        deadline = self.sim.timeout(self.cfg.collectives.software_timeout_ns)
        result = yield from kernel.wait(self.sim.any_of([event, deadline]))
        if event in result:
            return result[event]
        if not box.cancel_read(event):
            # The read completed in the same instant the deadline fired.
            return event.value
        raise CollectiveError(
            f"{self.name}: rank {rank} timed out waiting on {box.name}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CollectiveGroup {self.name} n={self.n} "
                f"mode={self.mode}>")
