"""Time and bandwidth units for the Nectar simulator.

The simulator clock counts integer **nanoseconds**.  All durations in the
code base are integers in this unit; helpers below convert from human units
and from bandwidths to per-byte times.  Integer time keeps runs exactly
reproducible (no floating-point drift between platforms).
"""

from __future__ import annotations

#: One nanosecond — the base tick of the simulation clock.
NANOSECOND = 1
#: One microsecond in simulator ticks.
MICROSECOND = 1_000
#: One millisecond in simulator ticks.
MILLISECOND = 1_000_000
#: One second in simulator ticks.
SECOND = 1_000_000_000


def ns(value: float) -> int:
    """Convert a duration in nanoseconds to simulator ticks."""
    return round(value * NANOSECOND)


def us(value: float) -> int:
    """Convert a duration in microseconds to simulator ticks."""
    return round(value * MICROSECOND)


def ms(value: float) -> int:
    """Convert a duration in milliseconds to simulator ticks."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert a duration in seconds to simulator ticks."""
    return round(value * SECOND)


def megabits_per_second(rate: float) -> float:
    """Convert a rate in megabits/second to bytes per nanosecond."""
    return rate * 1_000_000 / 8 / SECOND


def megabytes_per_second(rate: float) -> float:
    """Convert a rate in megabytes/second to bytes per nanosecond."""
    return rate * 1_000_000 / SECOND


def byte_time(rate_bytes_per_ns: float) -> float:
    """Time in ticks to move one byte at ``rate_bytes_per_ns``."""
    return 1.0 / rate_bytes_per_ns


def transfer_time(num_bytes: int, rate_bytes_per_ns: float) -> int:
    """Integer ticks to move ``num_bytes`` at ``rate_bytes_per_ns``.

    Always at least 1 tick for a non-empty transfer so that causality is
    preserved (a transfer can never complete at the instant it starts).
    """
    if num_bytes <= 0:
        return 0
    ticks = round(num_bytes / rate_bytes_per_ns)
    return max(ticks, 1)


def to_us(ticks: int) -> float:
    """Express simulator ticks as microseconds (for reporting)."""
    return ticks / MICROSECOND


def to_ms(ticks: int) -> float:
    """Express simulator ticks as milliseconds (for reporting)."""
    return ticks / MILLISECOND


def throughput_mbps(num_bytes: int, ticks: int) -> float:
    """Achieved throughput in megabits/second for ``num_bytes`` over ``ticks``."""
    if ticks <= 0:
        return 0.0
    return num_bytes * 8 / (ticks / SECOND) / 1_000_000


def throughput_mbytes(num_bytes: int, ticks: int) -> float:
    """Achieved throughput in megabytes/second for ``num_bytes`` over ``ticks``."""
    if ticks <= 0:
        return 0.0
    return num_bytes / (ticks / SECOND) / 1_000_000
