"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot occurrence with a value.  Processes (see
:mod:`repro.sim.process`) suspend on events by yielding them; resources and
hardware models trigger them.  The design follows the classic simulation
pattern: triggering an event enqueues it on the simulator's agenda, and its
callbacks run when the agenda reaches it.

Hot-path notes.  Events are the engine's dominant allocation, so the
internal callback store (``_cb``) is adaptive: ``None`` while no callback
is registered, a bare callable for the overwhelmingly common single-waiter
case, and a list only once a second waiter appears.  A dedicated
``_PROCESSED`` sentinel marks the post-callback state (the public
:attr:`Event.processed` / :attr:`Event.callbacks` views are unchanged).
Triggering appends the event to its timestamp's cohort list in the
simulator's calendar-queue agenda — appends happen in scheduling order,
so the cohort list *is* the classic ``(time, priority, seq)`` FIFO
order, with no per-event sequence number or heap sift at all.  The
trigger sites here inline the calendar insert (see
:meth:`repro.sim.engine.Simulator._schedule` for the annotated copy):
``succeed``/``fail`` fire at the current instant, which the engine
guarantees lies below the overflow-rung horizon, while
:class:`Timeout` may land arbitrarily far out and so checks it.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Simulator

#: Sentinel marking an event that has not been triggered yet.
PENDING = object()

#: Sentinel stored in ``_cb`` once an event's callbacks have run.
_PROCESSED = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Life cycle: *pending* → *triggered* (``succeed``/``fail`` called, event
    sits on the agenda) → *processed* (callbacks have run).  An event may be
    triggered exactly once.
    """

    __slots__ = ("sim", "_cb", "_value", "_ok")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._cb: Any = None
        self._value: Any = PENDING
        self._ok: Optional[bool] = None

    @property
    def callbacks(self) -> Optional[list[Callable[["Event"], None]]]:
        """Snapshot of the registered callbacks (None once processed).

        Diagnostic view only — register through :meth:`add_callback`;
        mutating the returned list has no effect.
        """
        cb = self._cb
        if cb is _PROCESSED:
            return None
        if cb is None:
            return []
        if type(cb) is list:
            return list(cb)
        return [cb]

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._cb is _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise RuntimeError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        run = sim._open_run
        if run is not None:
            run.append(self)
            return self
        time = sim.now
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is not None:
            bucket.append(self)
        else:
            buckets[time] = [self]
            heappush(sim._times, time)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes see the exception raised at their yield point.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        run = sim._open_run
        if run is not None:
            run.append(self)
            return self
        time = sim.now
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is not None:
            bucket.append(self)
        else:
            buckets[time] = [self]
            heappush(sim._times, time)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately.
        """
        cb = self._cb
        if cb is None:
            self._cb = callback
        elif cb is _PROCESSED:
            callback(self)
        elif type(cb) is list:
            cb.append(callback)
        else:
            self._cb = [cb, callback]

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously added callback (no-op if absent)."""
        cb = self._cb
        if type(cb) is list:
            try:
                cb.remove(callback)
            except ValueError:
                pass
        elif cb is not None and cb is not _PROCESSED and cb == callback:
            self._cb = None

    def _run_callbacks(self) -> None:
        cb = self._cb
        self._cb = _PROCESSED
        if cb is None:
            return
        if type(cb) is list:
            for callback in cb:
                callback(self)
        else:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    The single authoritative negative-delay check lives here (the agenda
    itself trusts its callers), and the engine keeps a free list of
    processed, unreferenced Timeouts — see
    :meth:`repro.sim.engine.Simulator.timeout`.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        self.sim = sim
        self._cb = None
        self._ok = True
        self._value = value
        self.delay = delay
        time = sim.now + delay
        if delay == 0:
            run = sim._open_run
            if run is not None:
                run.append(self)
                return
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is not None:
            bucket.append(self)
        elif time < sim._horizon:
            buckets[time] = [self]
            heappush(sim._times, time)
        else:
            sim._far.append((time, self))


class Condition(Event):
    """Base for composite events over several sub-events.

    Subclasses define :meth:`_satisfied`.  The condition's value is a dict
    mapping each *triggered* sub-event to its value at the moment the
    condition fired.  A failing sub-event fails the whole condition.
    """

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("all events must share one simulator")
        self._pending_count = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _satisfied(self, fired: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending_count -= 1
        fired = len(self.events) - self._pending_count
        if self._satisfied(fired, len(self.events)):
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        return {
            event: event._value
            for event in self.events
            if event.triggered and event._ok
        }


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def _satisfied(self, fired: int, total: int) -> bool:
        return fired == total


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def _satisfied(self, fired: int, total: int) -> bool:
        return fired >= 1
