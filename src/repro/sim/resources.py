"""Synchronisation and queueing primitives built on events.

These are the building blocks the hardware and kernel models share:

* :class:`Store` — a bounded FIFO of items (fiber queues, mailboxes).
* :class:`Container` — a bounded quantity of homogeneous "stuff"
  (byte-counted buffer occupancy).
* :class:`Resource` — counted mutual exclusion (bus ownership, DMA
  channels).
* :class:`Broadcast` — a repeating signal many processes can wait on.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator

INFINITY = float("inf")


class Store:
    """A FIFO item queue with optional capacity.

    ``put(item)`` and ``get()`` return events.  Puts block while the store
    is full; gets block while it is empty.  Waiters are served in FIFO
    order, which keeps simulations deterministic.
    """

    def __init__(self, sim: "Simulator", capacity: float = INFINITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event that fires (with ``item``) once the item is stored."""
        event = self.sim.event()
        if not self._putters and len(self.items) < self.capacity:
            # Fast path: room available, FIFO preserved (no queued putter
            # to overtake).  Identical event ordering to _service().
            self.items.append(item)
            event.succeed(item)
            if self._getters:
                self._service()
            return event
        self._putters.append((event, item))
        self._service()
        return event

    def try_put(self, item: Any) -> bool:
        """Store ``item`` immediately if there is room; returns success."""
        if self.is_full or self._putters:
            return False
        self.items.append(item)
        self._service()
        return True

    def get(self) -> Event:
        """Event that fires with the oldest item once one is available."""
        event = self.sim.event()
        if self.items and not self._getters:
            # Fast path: an item is ready and no earlier getter waits.
            event.succeed(self.items.popleft())
            if self._putters:
                self._service()
            return event
        self._getters.append(event)
        self._service()
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Pop the oldest item if present: returns ``(ok, item_or_None)``."""
        if self.items and not self._getters:
            item = self.items.popleft()
            self._service()
            return True, item
        return False, None

    def _service(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed(item)
                progressed = True
            while self._getters and self.items:
                event = self._getters.popleft()
                event.succeed(self.items.popleft())
                progressed = True


class Container:
    """A bounded quantity of homogeneous units (e.g. bytes in a buffer).

    ``put(n)`` blocks while the container lacks room for ``n`` units;
    ``get(n)`` blocks until ``n`` units are present.  Requests are served
    in FIFO order per side.
    """

    def __init__(self, sim: "Simulator", capacity: float = INFINITY,
                 initial: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= initial <= capacity:
            raise ValueError(f"initial level {initial} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.level = initial
        self._getters: deque[tuple[Event, int]] = deque()
        self._putters: deque[tuple[Event, int]] = deque()

    @property
    def free(self) -> float:
        return self.capacity - self.level

    def put(self, amount: int) -> Event:
        if amount <= 0:
            raise ValueError(f"put amount must be positive, got {amount}")
        if amount > self.capacity:
            raise ValueError(f"put of {amount} exceeds capacity "
                             f"{self.capacity}")
        event = self.sim.event()
        self._putters.append((event, amount))
        self._service()
        return event

    def get(self, amount: int) -> Event:
        if amount <= 0:
            raise ValueError(f"get amount must be positive, got {amount}")
        if amount > self.capacity:
            # Mirrors put(): a request larger than the container can ever
            # hold would otherwise park its waiter forever with no
            # diagnostic.
            raise ValueError(f"get of {amount} exceeds capacity "
                             f"{self.capacity}")
        event = self.sim.event()
        self._getters.append((event, amount))
        self._service()
        return event

    def _service(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed(amount)
                    progressed = True


class Resource:
    """Counted mutual exclusion with FIFO queueing.

    ``acquire()`` returns an event that fires when a slot is granted;
    ``release()`` frees a slot.  Used for bus ownership and DMA channels.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self, priority: bool = False) -> Event:
        """Request a slot.  ``priority=True`` jumps the wait queue
        (used for interrupt-context work that must preempt thread-level
        work at the next quantum boundary)."""
        event = self.sim.event()
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            event.succeed()
        elif priority:
            self._waiters.appendleft(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            event = self._waiters.popleft()
            event.succeed()
        else:
            self.in_use -= 1

class Broadcast:
    """A repeating signal: every ``fire`` wakes all current waiters.

    Unlike :class:`~repro.sim.events.Event`, a Broadcast can fire many
    times; each ``wait()`` returns a fresh one-shot event tied to the next
    firing.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._waiters: list[Event] = []

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        event = self.sim.event()
        self._waiters.append(event)
        return event

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)
        return len(waiters)
