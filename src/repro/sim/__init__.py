"""Discrete-event simulation kernel underlying the Nectar reproduction.

Public surface::

    from repro.sim import Simulator, Interrupt, Store, Container, Resource

Time is integer nanoseconds; see :mod:`repro.sim.units`.
"""

from .engine import SimulationError, Simulator
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .process import Interrupt, Process, ProcessCrash
from .resources import Broadcast, Container, Resource, Store
from .trace import TraceRecord, Tracer
from . import units

__all__ = [
    "AllOf",
    "AnyOf",
    "Broadcast",
    "Condition",
    "Container",
    "Event",
    "Interrupt",
    "Process",
    "ProcessCrash",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "units",
]
