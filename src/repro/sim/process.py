"""Coroutine processes driven by the simulation engine.

A :class:`Process` wraps a generator.  The generator yields
:class:`~repro.sim.events.Event` objects; each yield suspends the process
until the event fires, at which point the event's value is sent back into
the generator (or its exception raised there).  A process is itself an
event that fires with the generator's return value, so processes can wait
on each other.

Hot-path notes: a process resumes once per yield, so :meth:`Process._resume`
is one of the engine's hottest functions.  The bound resume method is
created once (``_on_fire``) instead of per wait, bootstrap/resume carrier
events come from the simulator's free list via
:meth:`~repro.sim.engine.Simulator._carrier`, and the single-waiter
callback representation avoids a list allocation per awaited event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import PENDING, _PROCESSED, Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The CAB kernel uses interrupts the way the hardware does: to pull a
    thread out of a wait when a higher-level event (packet arrival, timer)
    demands attention.
    """

    @property
    def cause(self) -> Any:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class ProcessCrash(Exception):
    """An unhandled exception escaped a process with no waiters.

    Wrapping keeps the original traceback while making the simulation stop
    loudly instead of dropping errors on the floor.
    """


class Process(Event):
    """A running coroutine inside the simulation.

    Create via :meth:`repro.sim.engine.Simulator.process`.  The process event
    fires when the generator returns (value = return value) or fails when
    the generator raises.
    """

    __slots__ = ("name", "_generator", "_waiting_on", "_on_fire")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got "
                            f"{type(generator).__name__}")
        self.sim = sim
        self._cb = None
        self._value = PENDING
        self._ok = None
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        #: The one bound resume callback reused for every wait.
        self._on_fire = self._resume
        self._waiting_on: Optional[Event] = sim._carrier(
            True, None, self._on_fire)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is an error; interrupting a process
        that is not waiting (e.g. it is scheduled to run at this instant)
        delivers the interrupt before its next resumption.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and target._cb is not _PROCESSED:
            target.remove_callback(self._on_fire)
        self._waiting_on = self.sim._carrier(
            False, Interrupt(cause), self._on_fire, urgent=True)

    def _resume(self, trigger: Event) -> None:
        if self._value is not PENDING:
            return
        sim = self.sim
        self._waiting_on = None
        sim._active_process = self
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # An unhandled interrupt terminates the process quietly with
            # the interrupt cause as its value, mirroring thread kill.
            sim._active_process = None
            self.succeed(interrupt.cause)
            return
        except BaseException as error:
            sim._active_process = None
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            self._crash(error)
            return
        sim._active_process = None
        if not isinstance(target, Event):
            self._crash(TypeError(
                f"process {self.name!r} yielded {target!r}, expected Event"))
            return
        if target.sim is not sim:
            self._crash(ValueError(
                f"process {self.name!r} yielded event of another simulator"))
            return
        cb = target._cb
        if cb is _PROCESSED:
            # Already-processed events resume the process on the next step.
            self._waiting_on = sim._carrier(
                target._ok, target._value, self._on_fire)
        else:
            # Inlined Event.add_callback (the target is not processed).
            if cb is None:
                target._cb = self._on_fire
            elif type(cb) is list:
                cb.append(self._on_fire)
            else:
                target._cb = [cb, self._on_fire]
            self._waiting_on = target

    def _crash(self, error: BaseException) -> None:
        self._generator.close()
        if self._cb is not None:
            # Someone is waiting on this process: propagate to them.
            self.fail(error)
        else:
            self.sim._halt(ProcessCrash(
                f"unhandled error in process {self.name!r}: {error!r}"),
                cause=error)
            # Mark triggered so is_alive is False after a crash.
            self._ok = False
            self._value = error
            self._cb = _PROCESSED

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
