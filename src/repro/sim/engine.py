"""The discrete-event simulation engine.

:class:`Simulator` owns the clock (integer nanoseconds) and the agenda — a
priority queue of triggered events.  Hardware models and protocol code are
written as coroutine processes; the engine interleaves them in timestamp
order, with FIFO tie-breaking for determinism.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Optional

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process


class SimulationError(Exception):
    """The simulation was halted by an unrecoverable error."""


class Simulator:
    """Event loop, clock, and process factory.

    Typical use::

        sim = Simulator()

        def hello():
            yield sim.timeout(100)
            return sim.now

        proc = sim.process(hello())
        sim.run()
        assert proc.value == 100
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._agenda: list[tuple[int, int, int, Event]] = []
        self._sequence = count()
        self._active_process: Optional[Process] = None
        self._halted: Optional[BaseException] = None
        self._halt_cause: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # clock and agenda
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def _enqueue(self, event: Event, delay: int, urgent: bool = False) -> None:
        """Place a triggered event on the agenda ``delay`` ticks from now.

        ``urgent`` events sort before normal events at the same timestamp
        (used for interrupt delivery).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        priority = 0 if urgent else 1
        heapq.heappush(self._agenda,
                       (self._now + delay, priority, next(self._sequence), event))

    def _halt(self, error: BaseException,
              cause: Optional[BaseException] = None) -> None:
        self._halted = error
        self._halt_cause = cause

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ticks from now with ``value``."""
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Start a coroutine process; returns its completion event."""
        return Process(self, generator, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event firing when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event firing when any event in ``events`` has fired."""
        return AnyOf(self, events)

    def call_at(self, time: int, func: Callable[[], None]) -> None:
        """Run ``func()`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(f"call_at({time}) is in the past (now={self._now})")
        event = Event(self)
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _event: func())
        self._enqueue(event, delay=time - self._now)

    def call_in(self, delay: int, func: Callable[[], None]) -> None:
        """Run ``func()`` ``delay`` ticks from now."""
        self.call_at(self._now + int(delay), func)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Timestamp of the next agenda entry, or None if idle."""
        return self._agenda[0][0] if self._agenda else None

    def step(self) -> None:
        """Process exactly one agenda entry."""
        if self._halted is not None:
            raise SimulationError(str(self._halted)) from self._halt_cause
        if not self._agenda:
            raise RuntimeError("step() on an empty agenda")
        when, _priority, _seq, event = heapq.heappop(self._agenda)
        self._now = when
        event._run_callbacks()
        if self._halted is not None:
            error, self._halted = self._halted, None
            cause, self._halt_cause = self._halt_cause, None
            raise SimulationError(str(error)) from cause

    def run(self, until: Optional[int] = None) -> int:
        """Run until the agenda drains or the clock would pass ``until``.

        With ``until`` given, all events with timestamp ``<= until`` are
        processed and the clock is then advanced to exactly ``until``.
        Returns the final clock value.
        """
        if until is not None and until < self._now:
            raise ValueError(f"run(until={until}) is in the past "
                             f"(now={self._now})")
        while self._agenda:
            if until is not None and self._agenda[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = until
        return self._now

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: Optional[str] = None,
                    until: Optional[int] = None) -> Any:
        """Convenience: start ``generator``, run, and return its value.

        Raises if the process did not complete within ``until``.
        """
        proc = self.process(generator, name=name)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self._now}")
        if not proc.ok:
            raise proc.value
        return proc.value
