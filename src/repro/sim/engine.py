"""The discrete-event simulation engine.

:class:`Simulator` owns the clock (integer nanoseconds) and the agenda — a
priority queue of triggered events.  Hardware models and protocol code are
written as coroutine processes; the engine interleaves them in timestamp
order, with FIFO tie-breaking for determinism.

Hot-path design (see ``docs/PERFORMANCE.md`` for the full story):

* :meth:`Simulator.run` drains the agenda in one inlined loop — no
  per-event :meth:`step` call, no per-event method dispatch for the
  common callback shapes.
* Agenda entries are slim 3-tuples ``(time, key, event)`` where ``key``
  packs urgency and the FIFO sequence into one integer
  (:data:`repro.sim.events.NORMAL_KEY`).  Ordering is bit-for-bit the
  classic ``(time, priority, seq)`` contract.
* Processed :class:`Timeout`/:class:`Event` objects that nothing else
  references (checked via ``sys.getrefcount``) are recycled on free
  lists, eliminating the dominant allocation of every fiber
  serialization, DMA transfer, VME cycle, and kernel timer.
* :meth:`Simulator.call_at` schedules a featherweight callable wrapper
  instead of a throwaway ``Event`` + lambda pair.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from sys import getrefcount
from typing import Any, Callable, Generator, Optional

from .events import NORMAL_KEY, PENDING, _PROCESSED, AllOf, AnyOf, Event, \
    Timeout
from .process import Process

#: Free lists never grow past this many parked objects; beyond it the
#: simulation's live-event population, not the pool, bounds memory.
_POOL_LIMIT = 2048

#: A processed event recycled from the drain loop is referenced only by
#: the loop local plus ``getrefcount``'s own argument.
_UNREFERENCED = 2


class SimulationError(Exception):
    """The simulation was halted by an unrecoverable error."""


class _Call:
    """Agenda-resident wrapper for :meth:`Simulator.call_at` functions.

    Replaces the pre-triggered ``Event`` + adapter-lambda + callback-list
    allocation trio with a single two-word object.  The drain loop
    special-cases it; :meth:`Simulator.step` reaches it through
    ``_run_callbacks`` like any other entry.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self._fn = fn

    def _run_callbacks(self) -> None:
        self._fn()


class Simulator:
    """Event loop, clock, and process factory.

    Typical use::

        sim = Simulator()

        def hello():
            yield sim.timeout(100)
            return sim.now

        proc = sim.process(hello())
        sim.run()
        assert proc.value == 100
    """

    def __init__(self) -> None:
        #: Current simulation time in nanoseconds.  A plain attribute, not
        #: a property: model code reads the clock on every hop/transfer,
        #: so the read must be one dict lookup.  Treat as read-only.
        self.now: int = 0
        self._agenda: list[tuple[int, int, Any]] = []
        self._sequence = count()
        self._active_process: Optional[Process] = None
        self._halted: Optional[BaseException] = None
        self._halt_cause: Optional[BaseException] = None
        #: Agenda entries processed so far (events/sec benchmarking).
        self.events_processed: int = 0
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []

    # ------------------------------------------------------------------
    # clock and agenda
    # ------------------------------------------------------------------

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def _enqueue(self, event: Any, delay: int, urgent: bool = False) -> None:
        """Place a triggered event on the agenda ``delay`` ticks from now.

        ``urgent`` events sort before normal events at the same timestamp
        (used for interrupt delivery).  Internal: callers guarantee a
        non-negative delay (the single authoritative negative-delay check
        lives in :class:`~repro.sim.events.Timeout`).
        """
        heappush(self._agenda,
                 (self.now + delay,
                  (0 if urgent else NORMAL_KEY) | next(self._sequence),
                  event))

    def _halt(self, error: BaseException,
              cause: Optional[BaseException] = None) -> None:
        self._halted = error
        self._halt_cause = cause

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event (drawn from the free list if possible)."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = PENDING
            event._ok = None
            return event
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ticks from now with ``value``."""
        pool = self._timeout_pool
        if pool and type(delay) is int:
            if delay < 0:
                # Mirror Timeout.__init__'s authoritative check (pinned
                # by tests) so pool hits validate identically.
                raise ValueError(f"negative timeout delay {delay}")
            timeout = pool.pop()
            timeout.delay = delay
            timeout._ok = True
            timeout._value = value
            heappush(self._agenda,
                     (self.now + delay,
                      NORMAL_KEY | next(self._sequence), timeout))
            return timeout
        if type(delay) is not int:
            delay = int(delay)
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Start a coroutine process; returns its completion event."""
        return Process(self, generator, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event firing when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event firing when any event in ``events`` has fired."""
        return AnyOf(self, events)

    def _carrier(self, ok: bool, value: Any,
                 callback: Callable[[Event], None],
                 urgent: bool = False) -> Event:
        """A pre-triggered single-callback event (process resume vehicle)."""
        pool = self._event_pool
        event = pool.pop() if pool else Event(self)
        event._ok = ok
        event._value = value
        event._cb = callback
        heappush(self._agenda,
                 (self.now,
                  (0 if urgent else NORMAL_KEY) | next(self._sequence),
                  event))
        return event

    def call_at(self, time: int, func: Callable[[], None]) -> None:
        """Run ``func()`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"call_at({time}) is in the past (now={self.now})")
        heappush(self._agenda,
                 (time, NORMAL_KEY | next(self._sequence), _Call(func)))

    def call_in(self, delay: int, func: Callable[[], None]) -> None:
        """Run ``func()`` ``delay`` ticks from now."""
        self.call_at(self.now + int(delay), func)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Timestamp of the next agenda entry, or None if idle."""
        return self._agenda[0][0] if self._agenda else None

    def step(self) -> None:
        """Process exactly one agenda entry.

        The single-stepping path keeps the historical structure (no
        free-list recycling); :meth:`run` is the optimized drain loop.
        """
        if self._halted is not None:
            raise SimulationError(str(self._halted)) from self._halt_cause
        if not self._agenda:
            raise RuntimeError("step() on an empty agenda")
        when, _key, event = heappop(self._agenda)
        self.now = when
        self.events_processed += 1
        event._run_callbacks()
        if self._halted is not None:
            error, self._halted = self._halted, None
            cause, self._halt_cause = self._halt_cause, None
            raise SimulationError(str(error)) from cause

    def run(self, until: Optional[int] = None) -> int:
        """Run until the agenda drains or the clock would pass ``until``.

        With ``until`` given, all events with timestamp ``<= until`` are
        processed and the clock is then advanced to exactly ``until``.
        Returns the final clock value.
        """
        if until is not None and until < self.now:
            raise ValueError(f"run(until={until}) is in the past "
                             f"(now={self.now})")
        limit = float("inf") if until is None else until
        agenda = self._agenda
        if agenda and self._halted is not None and agenda[0][0] <= limit:
            raise SimulationError(str(self._halted)) from self._halt_cause
        pop = heappop
        refcount = getrefcount
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        processed = 0
        try:
            while agenda and agenda[0][0] <= limit:
                when, _key, event = pop(agenda)
                self.now = when
                processed += 1
                # Branches ordered by frequency: Timeout dominates every
                # hardware model, then plain Events, then _Call wrappers.
                # Recycling (the two exact-class branches) only fires when
                # nothing else can see the object; subclasses like
                # Process/Condition carry extra state and stay out.
                cls = event.__class__
                if cls is Timeout:
                    cb = event._cb
                    event._cb = _PROCESSED
                    if cb is not None:
                        if type(cb) is list:
                            for callback in cb:
                                callback(event)
                        else:
                            cb(event)
                    if len(timeout_pool) < _POOL_LIMIT \
                            and refcount(event) == _UNREFERENCED:
                        event._cb = None
                        timeout_pool.append(event)
                elif cls is _Call:
                    event._fn()
                else:
                    cb = event._cb
                    event._cb = _PROCESSED
                    if cb is not None:
                        if type(cb) is list:
                            for callback in cb:
                                callback(event)
                        else:
                            cb(event)
                    if cls is Event \
                            and len(event_pool) < _POOL_LIMIT \
                            and refcount(event) == _UNREFERENCED:
                        event._cb = None
                        event_pool.append(event)
                if self._halted is not None:
                    error, self._halted = self._halted, None
                    cause, self._halt_cause = self._halt_cause, None
                    raise SimulationError(str(error)) from cause
        finally:
            self.events_processed += processed
        if until is not None:
            self.now = until
        return self.now

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: Optional[str] = None,
                    until: Optional[int] = None) -> Any:
        """Convenience: start ``generator``, run, and return its value.

        Raises if the process did not complete within ``until``.
        """
        proc = self.process(generator, name=name)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self.now}")
        if not proc.ok:
            raise proc.value
        return proc.value
