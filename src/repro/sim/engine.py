"""The discrete-event simulation engine.

:class:`Simulator` owns the clock (integer nanoseconds) and the agenda — a
calendar queue of triggered events.  Hardware models and protocol code are
written as coroutine processes; the engine interleaves them in timestamp
order, with FIFO tie-breaking for determinism.

Hot-path design (see ``docs/PERFORMANCE.md`` for the full story):

* The agenda is a **calendar queue over timestamp cohorts**: a dict maps
  each pending timestamp to the plain list of events scheduled at it, an
  integer min-heap orders the *distinct* timestamps, and a ladder-style
  overflow rung absorbs sparse far-future events (watchdog/RTO timers)
  without polluting the heap.  Because the engine's FIFO sequence numbers
  are globally increasing, appending to a cohort list *is* the classic
  ``(time, priority, seq)`` ordering — bit for bit — with no per-event
  key allocation and no per-event heap sift.
* :meth:`Simulator.run` drains whole same-timestamp cohorts per bucket
  lookup: one heap pop, one ``self.now`` write, then a straight scan of
  the cohort list (which may grow while it is scanned — new events
  scheduled *at* the current instant are appended and drained in the
  same pass).
* Events scheduled at the current instant while a cohort is draining —
  every ``succeed``/``fail``, every process-resume carrier — are a
  single ``list.append``; the heap is touched only when a *new* future
  timestamp first appears.
* Processed :class:`Timeout`/:class:`Event` objects that nothing else
  references (checked via ``sys.getrefcount``) are recycled on free
  lists, eliminating the dominant allocation of every fiber
  serialization, DMA transfer, VME cycle, and kernel timer.
* :meth:`Simulator.call_at` schedules a featherweight callable wrapper
  instead of a throwaway ``Event`` + lambda pair.
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Optional

from .events import PENDING, _PROCESSED, AllOf, AnyOf, Event, Timeout
from .process import Process

#: Free lists never grow past this many parked objects; beyond it the
#: simulation's live-event population, not the pool, bounds memory.
_POOL_LIMIT = 2048

#: A processed event recycled from the cohort drain loop is referenced by
#: the cohort list it still sits in (cohorts are scanned, not popped),
#: the loop local, and ``getrefcount``'s own argument.
_UNREFERENCED_COHORT = 3

#: Width of the near-future window covered by the calendar proper.
#: Events scheduled at or past ``_horizon`` (which always sits at least
#: this far ahead of the clock) drop onto the overflow rung instead —
#: an unsorted append-only list, promoted wholesale into calendar
#: buckets when the near window drains.  2^21 ns ≈ 2.1 ms of simulated
#: time: comfortably past every per-hop/per-packet delay in the model,
#: so only genuinely sparse timers (retransmit watchdogs, reassembly
#: GC, health probes) ever take the rung detour.
_RUNG_SPAN = 1 << 21


class SimulationError(Exception):
    """The simulation was halted by an unrecoverable error."""


class _Call:
    """Agenda-resident wrapper for :meth:`Simulator.call_at` functions.

    Replaces the pre-triggered ``Event`` + adapter-lambda + callback-list
    allocation trio with a single two-word object.  The drain loop
    special-cases it; :meth:`Simulator.step` reaches it through
    ``_run_callbacks`` like any other entry.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self._fn = fn

    def _run_callbacks(self) -> None:
        self._fn()


class Simulator:
    """Event loop, clock, and process factory.

    Typical use::

        sim = Simulator()

        def hello():
            yield sim.timeout(100)
            return sim.now

        proc = sim.process(hello())
        sim.run()
        assert proc.value == 100
    """

    def __init__(self) -> None:
        #: Current simulation time in nanoseconds.  A plain attribute, not
        #: a property: model code reads the clock on every hop/transfer,
        #: so the read must be one dict lookup.  Treat as read-only.
        self.now: int = 0
        # Calendar-queue agenda.  Invariants (see docs/PERFORMANCE.md):
        #  * every key of _buckets/_urgent_buckets is on the _times heap
        #    (duplicates tolerated, deduplicated at pop);
        #  * every bucket key < _horizon <= every rung entry's time;
        #  * self.now < _horizon at all times, so scheduling at the
        #    current instant never needs a horizon check;
        #  * cohort lists are in FIFO (= global sequence) order, because
        #    appends happen in scheduling order.
        self._buckets: dict[int, list[Any]] = {}
        self._urgent_buckets: dict[int, list[Any]] = {}
        self._times: list[int] = []
        self._far: list[tuple[int, Any]] = []
        self._far_urgent: list[tuple[int, Any]] = []
        self._horizon: int = _RUNG_SPAN
        #: While :meth:`run` drains the cohort at ``self.now``, the live
        #: cohort list; events scheduled at the current instant append
        #: here and are processed in the same pass.
        self._open_run: Optional[list[Any]] = None
        #: Urgent arrivals for the open cohort (interrupt delivery).
        self._open_urgent: list[Any] = []
        self._active_process: Optional[Process] = None
        self._halted: Optional[BaseException] = None
        self._halt_cause: Optional[BaseException] = None
        #: Agenda entries processed so far (events/sec benchmarking).
        self.events_processed: int = 0
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []

    # ------------------------------------------------------------------
    # clock and agenda
    # ------------------------------------------------------------------

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def _schedule(self, time: int, item: Any) -> None:
        """Place ``item`` (normal urgency) on the agenda at ``time``.

        Internal: callers guarantee ``time >= self.now``.  The hot
        scheduling sites (``succeed``/``fail``, ``Timeout``, the timeout
        free-list path) inline this dance; everything else lands here.
        """
        if time == self.now:
            run = self._open_run
            if run is not None:
                run.append(item)
                return
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is not None:
            bucket.append(item)
        elif time < self._horizon:
            buckets[time] = [item]
            heappush(self._times, time)
        else:
            self._far.append((time, item))

    def _schedule_urgent(self, time: int, item: Any) -> None:
        """Urgent variant: sorts before every normal event at ``time``."""
        if time == self.now and self._open_run is not None:
            self._open_urgent.append(item)
            return
        buckets = self._urgent_buckets
        bucket = buckets.get(time)
        if bucket is not None:
            bucket.append(item)
        elif time < self._horizon:
            buckets[time] = [item]
            heappush(self._times, time)
        else:
            self._far_urgent.append((time, item))

    def _enqueue(self, event: Any, delay: int, urgent: bool = False) -> None:
        """Place a triggered event on the agenda ``delay`` ticks from now.

        ``urgent`` events sort before normal events at the same timestamp
        (used for interrupt delivery).  Internal: callers guarantee a
        non-negative delay (the single authoritative negative-delay check
        lives in :class:`~repro.sim.events.Timeout`).
        """
        if urgent:
            self._schedule_urgent(self.now + delay, event)
        else:
            self._schedule(self.now + delay, event)

    def _promote(self) -> None:
        """Fold the overflow rung back into calendar buckets.

        Called when the near window has drained (or is peeked) while rung
        entries remain.  Rung entries are appended in scheduling order, so
        walking the rung in order preserves per-cohort FIFO; the horizon
        then jumps past everything just promoted, restoring the
        bucket-below/rung-above invariant.
        """
        buckets = self._buckets
        urgent_buckets = self._urgent_buckets
        times = self._times
        max_time = 0
        for time, item in self._far:
            bucket = buckets.get(time)
            if bucket is not None:
                bucket.append(item)
            else:
                buckets[time] = [item]
                heappush(times, time)
            if time > max_time:
                max_time = time
        for time, item in self._far_urgent:
            bucket = urgent_buckets.get(time)
            if bucket is not None:
                bucket.append(item)
            else:
                urgent_buckets[time] = [item]
                heappush(times, time)
            if time > max_time:
                max_time = time
        self._far.clear()
        self._far_urgent.clear()
        self._horizon = max(self.now + _RUNG_SPAN, max_time + 1)

    def _halt(self, error: BaseException,
              cause: Optional[BaseException] = None) -> None:
        self._halted = error
        self._halt_cause = cause

    def _raise_halt(self) -> None:
        """Consume and raise the stored halt (one-shot, path-independent)."""
        error, self._halted = self._halted, None
        cause, self._halt_cause = self._halt_cause, None
        raise SimulationError(str(error)) from cause

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event (drawn from the free list if possible)."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = PENDING
            event._ok = None
            return event
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ticks from now with ``value``."""
        if type(delay) is not int:
            # One authoritative coercion for *both* the free-list and
            # fresh-allocation paths (int() truncation toward zero, as
            # documented).  Before this lived here, a float delay was
            # truncated on the pool-miss path but shunted past the pool
            # on hits — the same call site could round differently
            # depending on pool state.
            delay = int(delay)
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                # Mirror Timeout.__init__'s authoritative check (pinned
                # by tests) so pool hits validate identically.
                raise ValueError(f"negative timeout delay {delay}")
            timeout = pool.pop()
            timeout.delay = delay
            timeout._ok = True
            timeout._value = value
            if delay == 0:
                run = self._open_run
                if run is not None:
                    run.append(timeout)
                    return timeout
            time = self.now + delay
            buckets = self._buckets
            bucket = buckets.get(time)
            if bucket is not None:
                bucket.append(timeout)
            elif time < self._horizon:
                buckets[time] = [timeout]
                heappush(self._times, time)
            else:
                self._far.append((time, timeout))
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Start a coroutine process; returns its completion event."""
        return Process(self, generator, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event firing when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event firing when any event in ``events`` has fired."""
        return AnyOf(self, events)

    def _carrier(self, ok: bool, value: Any,
                 callback: Callable[[Event], None],
                 urgent: bool = False) -> Event:
        """A pre-triggered single-callback event (process resume vehicle)."""
        pool = self._event_pool
        event = pool.pop() if pool else Event(self)
        event._ok = ok
        event._value = value
        event._cb = callback
        if urgent:
            self._schedule_urgent(self.now, event)
            return event
        run = self._open_run
        if run is not None:
            run.append(event)
            return event
        # Cold path (scheduling from outside a drain): current-instant
        # inserts never need the horizon check (now < _horizon always).
        time = self.now
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is not None:
            bucket.append(event)
        else:
            buckets[time] = [event]
            heappush(self._times, time)
        return event

    def call_at(self, time: int, func: Callable[[], None]) -> None:
        """Run ``func()`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"call_at({time}) is in the past (now={self.now})")
        self._schedule(time, _Call(func))

    def call_in(self, delay: int, func: Callable[[], None]) -> None:
        """Run ``func()`` ``delay`` ticks from now."""
        self.call_at(self.now + int(delay), func)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Timestamp of the next agenda entry, or None if idle.

        Reads the calendar head (the distinct-timestamp heap); if only
        rung entries remain they are promoted first, so the answer is
        exact either way.  The scale-out coordinator's per-window
        lookahead is computed from this.
        """
        if self._times:
            return self._times[0]
        if self._far or self._far_urgent:
            self._promote()
            return self._times[0]
        return None

    def step(self) -> None:
        """Process exactly one agenda entry.

        The single-stepping path keeps the historical structure (no
        free-list recycling); :meth:`run` is the optimized drain loop.
        Both raise a pending halt the same way: immediately on entry,
        whatever the agenda state, consuming it as they do.
        """
        if self._halted is not None:
            self._raise_halt()
        times = self._times
        if not times:
            if self._far or self._far_urgent:
                self._promote()
            else:
                raise RuntimeError("step() on an empty agenda")
        time = times[0]
        urgent_buckets = self._urgent_buckets
        bucket = urgent_buckets.get(time)
        if bucket is not None:
            event = bucket.pop(0)
            if not bucket:
                del urgent_buckets[time]
        else:
            bucket = self._buckets[time]
            event = bucket.pop(0)
            if not bucket:
                del self._buckets[time]
        if time not in self._buckets and time not in urgent_buckets:
            heappop(times)
            while times and times[0] == time:  # drop heap duplicates
                heappop(times)
        self.now = time
        self.events_processed += 1
        event._run_callbacks()
        if self._halted is not None:
            self._raise_halt()

    def _drain_urgent(self) -> int:
        """Process queued urgent arrivals for the open cohort.

        Rare (interrupt delivery).  Stops at a halt so the drain loop's
        halt check sees it with the remaining urgents still queued.
        """
        queue = self._open_urgent
        processed = 0
        while queue and self._halted is None:
            event = queue.pop(0)
            processed += 1
            event._run_callbacks()
        return processed

    def run(self, until: Optional[int] = None) -> int:
        """Run until the agenda drains or the clock would pass ``until``.

        With ``until`` given, all events with timestamp ``<= until`` are
        processed and the clock is then advanced to exactly ``until``.
        Returns the final clock value.  A halt stored by a crashed
        process is raised on entry even when the agenda is empty or its
        next entry lies beyond ``until`` — a pending halt is never
        silently swallowed.
        """
        if until is not None and until < self.now:
            raise ValueError(f"run(until={until}) is in the past "
                             f"(now={self.now})")
        if self._halted is not None:
            self._raise_halt()
        limit: Any = float("inf") if until is None else until
        buckets = self._buckets
        urgent_buckets = self._urgent_buckets
        times = self._times
        urgent_queue = self._open_urgent
        pop_time = heappop
        refcount = getrefcount
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        processed = 0
        time = self.now
        run_list: list[Any] = []
        index = -1
        try:
            while True:
                if not times:
                    if self._far or self._far_urgent:
                        self._promote()
                    else:
                        break
                time = times[0]
                if time > limit:
                    break
                pop_time(times)
                while times and times[0] == time:  # drop heap duplicates
                    pop_time(times)
                cohort = buckets.pop(time, None)
                run_list = [] if cohort is None else cohort
                if urgent_buckets:
                    pending = urgent_buckets.pop(time, None)
                    if pending:
                        urgent_queue.extend(pending)
                index = -1
                self.now = time
                self._open_run = run_list
                if urgent_queue:
                    processed += self._drain_urgent()
                    if self._halted is not None:
                        self._raise_halt()
                # The cohort scan: run_list may grow while scanned (events
                # scheduled at this instant append to it); the list
                # iterator picks the new entries up in FIFO order.  The
                # index is counted by hand — enumerate() would work, but
                # its reused result tuple pins an extra reference to the
                # current event and defeats the refcount recycling check.
                # Branches are ordered by frequency: Timeout dominates
                # every hardware model, then plain Events, then _Call
                # wrappers.  Recycling (the two exact-class branches)
                # only fires when nothing else can see the object;
                # subclasses like Process/Condition carry extra state
                # and stay out.
                for event in run_list:
                    index += 1
                    processed += 1
                    cls = event.__class__
                    if cls is Timeout:
                        cb = event._cb
                        event._cb = _PROCESSED
                        if cb is not None:
                            if type(cb) is list:
                                for callback in cb:
                                    callback(event)
                            else:
                                cb(event)
                        if len(timeout_pool) < _POOL_LIMIT \
                                and refcount(event) == _UNREFERENCED_COHORT:
                            event._cb = None
                            timeout_pool.append(event)
                    elif cls is _Call:
                        event._fn()
                    else:
                        cb = event._cb
                        event._cb = _PROCESSED
                        if cb is not None:
                            if type(cb) is list:
                                for callback in cb:
                                    callback(event)
                            else:
                                cb(event)
                        if cls is Event \
                                and len(event_pool) < _POOL_LIMIT \
                                and refcount(event) == _UNREFERENCED_COHORT:
                            event._cb = None
                            event_pool.append(event)
                    if urgent_queue:
                        processed += self._drain_urgent()
                    if self._halted is not None:
                        self._raise_halt()
                self._open_run = None
        finally:
            self.events_processed += processed
            open_run = self._open_run
            if open_run is not None:
                # Exceptional exit mid-cohort (halt or a callback raise):
                # push the unprocessed remainder back so a later run() or
                # step() resumes exactly where the heap engine would have.
                self._open_run = None
                rest = open_run[index + 1:]
                if rest or urgent_queue:
                    if rest:
                        buckets[time] = rest
                    if urgent_queue:
                        urgent_buckets[time] = list(urgent_queue)
                        del urgent_queue[:]
                    heappush(times, time)
        if until is not None:
            self.now = until
            if until >= self._horizon:
                # Keep the now-below-horizon invariant across idle gaps.
                if self._far or self._far_urgent:
                    self._promote()
                else:
                    self._horizon = until + _RUNG_SPAN
        return self.now

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: Optional[str] = None,
                    until: Optional[int] = None) -> Any:
        """Convenience: start ``generator``, run, and return its value.

        Raises if the process did not complete within ``until``.
        """
        proc = self.process(generator, name=name)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self.now}")
        if not proc.ok:
            raise proc.value
        return proc.value
