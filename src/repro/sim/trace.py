"""Event tracing — the software analogue of Nectar's instrumentation board.

The prototype HUB backplane accepts an instrumentation board that monitors
and records events related to the crossbar and its controller (§4.1).
:class:`Tracer` plays that role for the whole simulation: components emit
typed records, and tests/benchmarks query them afterwards.  The exporters
in :mod:`repro.observe.export` turn the same records into Chrome/Perfetto
trace files.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: int
    source: str
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Collects :class:`TraceRecord` objects from instrumented components.

    Tracing is off by default (zero overhead beyond one predicate check);
    enable globally or per-kind.  A bounded ``limit`` turns the buffer
    into a true ring: once full, each new record evicts the **oldest**
    one in O(1) (the buffer is a ``deque`` with ``maxlen``), and
    :attr:`dropped` counts the evictions so consumers can tell a
    truncated history from a complete one.
    """

    def __init__(self, sim: "Simulator", enabled: bool = False,
                 limit: Optional[int] = None) -> None:
        self.sim = sim
        self.enabled = enabled
        self._records: deque[TraceRecord] = deque(maxlen=limit)
        #: Records evicted from the ring so far (0 when unbounded).
        self.dropped = 0
        self._kind_filter: Optional[set[str]] = None
        self._listeners: list[Callable[[TraceRecord], None]] = []

    @property
    def limit(self) -> Optional[int]:
        """The ring capacity, or None when the buffer is unbounded."""
        return self._records.maxlen

    def set_limit(self, limit: Optional[int]) -> None:
        """Re-bound the ring, keeping the newest records that still fit."""
        self._records = deque(self._records, maxlen=limit)

    @property
    def records(self) -> list[TraceRecord]:
        """The retained records, oldest first (a copy)."""
        return list(self._records)

    def enable(self, kinds: Optional[list[str]] = None) -> None:
        """Turn tracing on, optionally restricted to the given kinds."""
        self.enabled = True
        self._kind_filter = set(kinds) if kinds else None

    def disable(self) -> None:
        self.enabled = False

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Call ``listener(record)`` on every accepted record."""
        self._listeners.append(listener)

    def record(self, source: str, kind: str, **fields: Any) -> None:
        """Emit a record (dropped unless tracing accepts this kind)."""
        if not self.enabled:
            return
        if self._kind_filter is not None and kind not in self._kind_filter:
            return
        entry = TraceRecord(self.sim.now, source, kind, fields)
        ring = self._records
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(entry)
        for listener in self._listeners:
            listener(entry)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    def find(self, kind: Optional[str] = None,
             source: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate retained records matching the given kind/source filters."""
        for entry in self._records:
            if kind is not None and entry.kind != kind:
                continue
            if source is not None and entry.source != source:
                continue
            yield entry

    def count(self, kind: Optional[str] = None,
              source: Optional[str] = None) -> int:
        return sum(1 for _ in self.find(kind=kind, source=source))
