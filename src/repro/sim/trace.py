"""Event tracing — the software analogue of Nectar's instrumentation board.

The prototype HUB backplane accepts an instrumentation board that monitors
and records events related to the crossbar and its controller (§4.1).
:class:`Tracer` plays that role for the whole simulation: components emit
typed records, and tests/benchmarks query them afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: int
    source: str
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Collects :class:`TraceRecord` objects from instrumented components.

    Tracing is off by default (zero overhead beyond one predicate check);
    enable globally or per-kind.  A bounded ``limit`` turns the buffer into
    a ring so long benchmark runs cannot exhaust memory.
    """

    def __init__(self, sim: "Simulator", enabled: bool = False,
                 limit: Optional[int] = None) -> None:
        self.sim = sim
        self.enabled = enabled
        self.limit = limit
        self.records: list[TraceRecord] = []
        self._kind_filter: Optional[set[str]] = None
        self._listeners: list[Callable[[TraceRecord], None]] = []

    def enable(self, kinds: Optional[list[str]] = None) -> None:
        """Turn tracing on, optionally restricted to the given kinds."""
        self.enabled = True
        self._kind_filter = set(kinds) if kinds else None

    def disable(self) -> None:
        self.enabled = False

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Call ``listener(record)`` on every accepted record."""
        self._listeners.append(listener)

    def record(self, source: str, kind: str, **fields: Any) -> None:
        """Emit a record (dropped unless tracing accepts this kind)."""
        if not self.enabled:
            return
        if self._kind_filter is not None and kind not in self._kind_filter:
            return
        entry = TraceRecord(self.sim.now, source, kind, fields)
        self.records.append(entry)
        if self.limit is not None and len(self.records) > self.limit:
            del self.records[0]
        for listener in self._listeners:
            listener(entry)

    def clear(self) -> None:
        self.records.clear()

    def find(self, kind: Optional[str] = None,
             source: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate records matching the given kind/source filters."""
        for entry in self.records:
            if kind is not None and entry.kind != kind:
                continue
            if source is not None and entry.source != source:
                continue
            yield entry

    def count(self, kind: Optional[str] = None,
              source: Optional[str] = None) -> int:
        return sum(1 for _ in self.find(kind=kind, source=source))
