"""Metric primitives: counters, gauges, histograms, and their registry.

The prototype HUB's instrumentation board (§4.1) accumulates event counts
in hardware registers that a supervisor reads out.  This module is the
software generalisation: components register named metrics at build time,
the :class:`~repro.observe.sampler.MetricSampler` turns them into time
series, and the exporters in :mod:`repro.observe.export` dump everything
for offline analysis.

Three metric kinds cover every consumer in the repository:

* :class:`Counter` — a monotonically increasing count (packets forwarded,
  retransmissions).
* :class:`Gauge` — an instantaneous level, either set explicitly or read
  on demand from a probe callable (queue depth, ready bit, channel busy).
* :class:`Histogram` — a value distribution backed by the log-bucketed
  :class:`~repro.stats.recorders.LatencyHistogram`, so memory stays
  bounded over arbitrarily long runs.

Registration is strict: a :class:`MetricRegistry` rejects duplicate
names, so two components can never silently share (and double-count) one
metric.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from ..errors import ObserveError
from ..stats.recorders import LatencyHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
]


class Metric:
    """Base class: a named, unit-annotated measurement."""

    kind = "metric"

    def __init__(self, name: str, description: str = "",
                 unit: str = "") -> None:
        if not name:
            raise ObserveError("metric name must be non-empty")
        self.name = name
        self.description = description
        self.unit = unit

    def value(self) -> Any:
        """The metric's current value (kind-specific)."""
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serialisable dump of the metric's current state."""
        return {
            "name": self.name,
            "kind": self.kind,
            "unit": self.unit,
            "value": self.value(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}={self.value()!r}>"


class Counter(Metric):
    """A monotonically increasing event count."""

    kind = "counter"

    def __init__(self, name: str, description: str = "",
                 unit: str = "") -> None:
        super().__init__(name, description, unit)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ObserveError(
                f"counter {self.name}: negative increment {amount}")
        self._value += amount

    def value(self) -> int:
        return self._value


class Gauge(Metric):
    """An instantaneous level: set explicitly, or probed on read.

    With ``fn`` given the gauge is *probed*: every :meth:`value` call
    re-evaluates the callable against live component state, which is what
    the periodic sampler relies on.
    """

    kind = "gauge"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, description, unit)
        self._value: float = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ObserveError(
                f"gauge {self.name} is probe-backed; cannot set directly")
        self._value = value

    def add(self, amount: float) -> None:
        if self._fn is not None:
            raise ObserveError(
                f"gauge {self.name} is probe-backed; cannot add directly")
        self._value += amount

    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram(Metric):
    """A bounded-memory value distribution (log-bucketed)."""

    kind = "histogram"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 sub_bits: int = 6) -> None:
        super().__init__(name, description, unit)
        self.histogram = LatencyHistogram(name, sub_bits=sub_bits)

    def observe(self, value: int, count: int = 1) -> None:
        """Record ``value`` into the distribution."""
        self.histogram.record(value, count)

    def value(self) -> dict[str, float]:
        return self.histogram.summary()


class MetricRegistry:
    """The per-system namespace of metrics.

    Components call :meth:`counter`/:meth:`gauge`/:meth:`histogram` (or
    :meth:`register` with a pre-built metric) at build time; duplicate
    names raise :class:`~repro.errors.ObserveError` so a metric can never
    be silently double-registered.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def register(self, metric: Metric) -> Metric:
        """Add ``metric``; raises on a duplicate name."""
        if metric.name in self._metrics:
            raise ObserveError(f"duplicate metric name {metric.name!r}")
        self._metrics[metric.name] = metric
        return metric

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    def counter(self, name: str, description: str = "",
                unit: str = "") -> Counter:
        metric = Counter(name, description, unit)
        self.register(metric)
        return metric

    def gauge(self, name: str, description: str = "", unit: str = "",
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        metric = Gauge(name, description, unit, fn=fn)
        self.register(metric)
        return metric

    def histogram(self, name: str, description: str = "", unit: str = "",
                  sub_bits: int = 6) -> Histogram:
        metric = Histogram(name, description, unit, sub_bits=sub_bits)
        self.register(metric)
        return metric

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise ObserveError(f"no metric named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        for name in self.names():
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Current values of every metric, keyed by name (sorted)."""
        return {metric.name: metric.snapshot() for metric in self}
