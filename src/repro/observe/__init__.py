"""Observability: metrics, periodic samplers, and trace exporters.

The paper's prototype HUB carries an instrumentation board that
"monitors and records events related to the crossbar and its controller"
(§4.1).  :mod:`repro.sim.trace` reproduces the *recording* half; this
package adds the *analysis* half — the utilization, queueing and latency
views the paper's Figures 6–7 discussion depends on — and generalises it
to the whole stack:

* :mod:`~repro.observe.metrics` — Counter/Gauge/Histogram and the
  duplicate-rejecting :class:`~repro.observe.metrics.MetricRegistry`.
* :mod:`~repro.observe.sampler` — periodic probe sampling as a simulator
  process (per-port queue depths, ready-bit occupancy, fiber
  utilization, DMA/VME busy fractions, mailbox depths, retransmits).
* :mod:`~repro.observe.export` — Chrome/Perfetto ``trace_event`` JSON,
  JSONL and CSV metric dumps.
* :mod:`~repro.observe.observatory` — the one-call wiring:
  ``system.observe()`` returns an
  :class:`~repro.observe.observatory.Observatory`.

Quickstart::

    from repro.topology import single_hub_system

    system = single_hub_system(4)
    observatory = system.observe()          # attach before traffic
    ...  # run traffic, system.run(...)
    observatory.export_chrome_trace("trace.json")   # open in Perfetto
    observatory.export_metrics_jsonl("metrics.jsonl")

See ``docs/OBSERVABILITY.md`` for the full guide and
``python -m repro observe --help`` for the CLI.
"""

from .export import (chrome_trace, series_rows, write_chrome_trace,
                     write_metrics_jsonl, write_series_csv)
from .metrics import Counter, Gauge, Histogram, Metric, MetricRegistry
from .observatory import Observatory
from .sampler import DEFAULT_INTERVAL_NS, MetricSampler, TimeSeries

__all__ = [
    "Counter",
    "DEFAULT_INTERVAL_NS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "MetricSampler",
    "Observatory",
    "TimeSeries",
    "chrome_trace",
    "series_rows",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "write_series_csv",
]
