"""Exporters: Chrome/Perfetto trace JSON, JSONL and CSV metric dumps.

Any observed run can be handed to a standard trace viewer: the Chrome
``trace_event`` format (the JSON array-of-events dialect, also read by
Perfetto's legacy importer via ui.perfetto.dev → "Open trace file")
carries

* one metadata event per event source naming its track,
* one instant event (``"ph": "i"``) per :class:`~repro.sim.trace.TraceRecord`,
* one counter event (``"ph": "C"``) per sampled
  :class:`~repro.observe.sampler.TimeSeries` point, which Perfetto
  renders as stacked counter tracks (queue depths, utilizations).

Timestamps are microseconds (the format's unit), converted from the
simulator's integer nanoseconds; sub-microsecond resolution survives as
fractional ``ts`` values.

The JSONL/CSV dumps are line-oriented so benchmark tooling can stream
them: every line of a JSONL dump is one self-contained JSON object with
a ``"type"`` discriminator.
"""

from __future__ import annotations

import csv
import json
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.trace import TraceRecord
    from .sampler import TimeSeries

__all__ = [
    "chrome_trace",
    "series_rows",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "write_series_csv",
]

#: pid reserved for sampled counter tracks in the Chrome trace.
_METRICS_TRACK = "metrics"


def _jsonable(value: Any) -> Any:
    """Clamp arbitrary trace-record field values to JSON scalars."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def chrome_trace(records: Iterable["TraceRecord"],
                 series: Optional[Mapping[str, "TimeSeries"]] = None
                 ) -> dict[str, Any]:
    """Build a Chrome ``trace_event`` document from records and series.

    Returns the JSON-serialisable dict (``{"traceEvents": [...]}``); use
    :func:`write_chrome_trace` to put it on disk.
    """
    records = list(records)
    sources = sorted({record.source for record in records})
    pids = {source: index + 1 for index, source in enumerate(sources)}
    metrics_pid = len(sources) + 1
    events: list[dict[str, Any]] = []
    for source, pid in pids.items():
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": source}})
    if series:
        events.append({"name": "process_name", "ph": "M",
                       "pid": metrics_pid, "tid": 0,
                       "args": {"name": _METRICS_TRACK}})
    for record in records:
        events.append({
            "name": record.kind,
            "ph": "i",
            "ts": record.time / 1000.0,
            "pid": pids[record.source],
            "tid": 0,
            "s": "t",
            "args": {key: _jsonable(value)
                     for key, value in record.fields.items()},
        })
    if series:
        for name in sorted(series):
            track = series[name]
            for time_ns, value in zip(track.times, track.values):
                events.append({
                    "name": name,
                    "ph": "C",
                    "ts": time_ns / 1000.0,
                    "pid": metrics_pid,
                    "args": {"value": value},
                })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(path, records: Iterable["TraceRecord"],
                       series: Optional[Mapping[str, "TimeSeries"]] = None
                       ) -> int:
    """Write a Chrome trace JSON file; returns the event count."""
    document = chrome_trace(records, series)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(document["traceEvents"])


def series_rows(series: Mapping[str, "TimeSeries"]
                ) -> Iterable[dict[str, Any]]:
    """Flatten sampled series into JSONL-ready ``"sample"`` rows."""
    for name in sorted(series):
        track = series[name]
        for time_ns, value in zip(track.times, track.values):
            yield {"type": "sample", "metric": name, "unit": track.unit,
                   "time_ns": time_ns, "value": value}


def write_metrics_jsonl(path, rows: Iterable[Mapping[str, Any]]) -> int:
    """Write one JSON object per line; returns the line count."""
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
            written += 1
    return written


def write_series_csv(path, series: Mapping[str, "TimeSeries"]) -> int:
    """Write sampled series as ``metric,unit,time_ns,value`` CSV rows."""
    written = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", "unit", "time_ns", "value"])
        for row in series_rows(series):
            writer.writerow([row["metric"], row["unit"],
                             row["time_ns"], row["value"]])
            written += 1
    return written
