"""The whole-system observer: wiring, snapshots, and export.

:class:`Observatory` is what `NectarSystem.observe()
<repro.system.builder.NectarSystem.observe>` returns: it builds a
:class:`~repro.observe.metrics.MetricRegistry` and a periodic
:class:`~repro.observe.sampler.MetricSampler`, asks every component in
the system to register its metrics (HUB ports, fibers, DMA and VME
channels, mailboxes, transports, datalinks), optionally turns on event
tracing, and exposes one-call exporters.

Attach it **before** running traffic — samplers are simulator processes
and probes only see what happens after they start.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .export import (series_rows, write_chrome_trace, write_metrics_jsonl,
                     write_series_csv)
from .metrics import MetricRegistry
from .sampler import DEFAULT_INTERVAL_NS, MetricSampler

if TYPE_CHECKING:  # pragma: no cover
    from ..system.builder import NectarSystem

__all__ = ["Observatory"]

#: Ring-buffer bound applied to the tracer when the Observatory enables
#: tracing and no limit was set: long runs keep the most recent events
#: instead of exhausting memory.
DEFAULT_TRACE_LIMIT = 200_000


class Observatory:
    """Metrics + tracing for one built :class:`NectarSystem`."""

    def __init__(self, system: "NectarSystem",
                 interval_ns: int = DEFAULT_INTERVAL_NS,
                 trace: bool = True,
                 trace_limit: Optional[int] = DEFAULT_TRACE_LIMIT) -> None:
        self.system = system
        self.registry = MetricRegistry()
        self.sampler = MetricSampler(system.sim, self.registry, interval_ns)
        self.tracing = trace
        if trace:
            if system.tracer.limit is None and trace_limit is not None:
                system.tracer.set_limit(trace_limit)
            system.tracer.enable()
        for hub in system.hubs.values():
            hub.register_metrics(self.registry, self.sampler)
        for stack in system.cabs.values():
            stack.register_metrics(self.registry, self.sampler)
        if getattr(system, "fault_injector", None) is not None:
            system.fault_injector.register_metrics(self.registry,
                                                   self.sampler)
        if getattr(system, "resilience", None) is not None:
            system.resilience.register_metrics(self.registry, self.sampler)
        self.sampler.start()

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------

    @property
    def series(self):
        """Sampled time series, keyed by metric name."""
        return self.sampler.series

    def snapshot(self) -> dict[str, Any]:
        """Current value of every registered metric, plus the clock."""
        return {
            "time_ns": self.system.sim.now,
            "metrics": self.registry.snapshot(),
        }

    def summary_rows(self) -> list[dict[str, Any]]:
        """JSONL-ready rows: every sample, then one final snapshot."""
        rows: list[dict[str, Any]] = list(series_rows(self.sampler.series))
        rows.append({"type": "snapshot", **self.snapshot()})
        return rows

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def export_chrome_trace(self, path) -> int:
        """Write a Perfetto-loadable trace; returns the event count."""
        return write_chrome_trace(path, self.system.tracer.records,
                                  self.sampler.series)

    def export_metrics_jsonl(self, path) -> int:
        """Write samples + final snapshot as JSONL; returns line count."""
        return write_metrics_jsonl(path, self.summary_rows())

    def export_series_csv(self, path) -> int:
        """Write sampled series as CSV; returns the data-row count."""
        return write_series_csv(path, self.sampler.series)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Observatory metrics={len(self.registry)} "
                f"samples={self.sampler.samples_taken}>")
