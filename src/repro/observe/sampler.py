"""Periodic metric sampling as a simulator process.

The instrumentation board (§4.1) watches backplane signals continuously;
software has to poll.  :class:`MetricSampler` runs as an ordinary
simulator process: every ``interval_ns`` it evaluates its registered
probes against live component state and appends one point per probe to
the corresponding :class:`TimeSeries`.  Sampling adds **zero simulated
time** to the instrumented components — probes only read state — so an
observed run has identical timing to an unobserved one.

Two probe flavours:

* :meth:`MetricSampler.add_probe` — an instantaneous level (queue depth,
  ready bit, channel busy).
* :meth:`MetricSampler.add_utilization_probe` — a busy *fraction* derived
  from a monotonically increasing unit count (e.g. fiber bytes sent):
  each tick converts the count delta into busy-nanoseconds and divides by
  the interval, clamped to [0, 1].

Determinism: probes fire in registration order at fixed simulated times,
and read only simulator state, so two runs with the same seed produce
byte-identical sample series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from ..errors import ObserveError
from .metrics import Gauge, MetricRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

__all__ = [
    "DEFAULT_INTERVAL_NS",
    "MetricSampler",
    "TimeSeries",
]

#: Default sampling period: 50 µs — fine enough to resolve per-port
#: queue oscillations at the paper's packet timescales (a 1 KB packet
#: serialises in ~82 µs), coarse enough to stay cheap.
DEFAULT_INTERVAL_NS = 50_000


@dataclass
class TimeSeries:
    """One metric's sampled history: parallel time/value lists."""

    name: str
    unit: str = ""
    times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time_ns: int, value: float) -> None:
        self.times.append(time_ns)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def mean(self) -> float:
        """Unweighted mean of the sampled values (0.0 when empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def points(self) -> list[tuple[int, float]]:
        return list(zip(self.times, self.values))


class MetricSampler:
    """Drives periodic probes and accumulates their time series."""

    def __init__(self, sim: "Simulator", registry: MetricRegistry,
                 interval_ns: int = DEFAULT_INTERVAL_NS) -> None:
        if interval_ns < 1:
            raise ObserveError(
                f"sampling interval must be >= 1 ns, got {interval_ns}")
        self.sim = sim
        self.registry = registry
        self.interval_ns = int(interval_ns)
        self.series: dict[str, TimeSeries] = {}
        self._probes: list[tuple[Gauge, Callable[[], float]]] = []
        self._started = False
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # probe registration
    # ------------------------------------------------------------------

    def add_probe(self, name: str, fn: Callable[[], float],
                  description: str = "", unit: str = "") -> Gauge:
        """Register an instantaneous-level probe sampled every tick."""
        gauge = self.registry.gauge(name, description, unit, fn=fn)
        self._probes.append((gauge, fn))
        self.series[name] = TimeSeries(name, unit)
        return gauge

    def add_utilization_probe(self, name: str,
                              count_fn: Callable[[], float],
                              busy_ns_per_unit: float,
                              description: str = "") -> Gauge:
        """Register a busy-fraction probe over a monotonic unit count.

        ``count_fn`` must return a non-decreasing total (bytes sent,
        cycles consumed).  Each tick the count delta is converted to
        busy time via ``busy_ns_per_unit`` and normalised by the
        sampling interval.
        """
        state = {"last": float(count_fn()), "last_t": self.sim.now}

        def fraction() -> float:
            now = self.sim.now
            current = float(count_fn())
            window = now - state["last_t"]
            if window <= 0:
                return 0.0
            busy = (current - state["last"]) * busy_ns_per_unit
            state["last"] = current
            state["last_t"] = now
            return min(max(busy / window, 0.0), 1.0)

        return self.add_probe(name, fraction, description, unit="fraction")

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample_now(self) -> None:
        """Take one sample of every probe at the current simulated time."""
        now = self.sim.now
        for gauge, _fn in self._probes:
            self.series[gauge.name].append(now, gauge.value())
        self.samples_taken += 1

    def start(self) -> None:
        """Spawn the periodic sampling process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._run(), name="observe.sampler")

    def _run(self):
        while True:
            yield self.sim.timeout(self.interval_ns)
            self.sample_now()

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------

    def means(self) -> dict[str, float]:
        """Mean sampled value per series (sorted by name)."""
        return {name: self.series[name].mean
                for name in sorted(self.series)}

    def get_series(self, name: str) -> TimeSeries:
        try:
            return self.series[name]
        except KeyError:
            raise ObserveError(f"no sampled series named {name!r}") from None
