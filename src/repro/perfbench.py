"""Wall-clock performance harness for the discrete-event hot path.

Every experiment in this reproduction runs through the pure-Python event
loop in :mod:`repro.sim`, so the simulator's own throughput (simulated
events per wall-clock second) is a first-class deliverable.  This module
defines a small set of **fixed-seed macro scenarios** — a hotspot
workload, a fault-injection campaign, a resilience link-flap, and an
engine-only timeout storm — and measures each one's events/sec and
wall-clock time.  Results are written to ``BENCH_engine.json`` so the
repo accumulates a performance trajectory over time.

Two properties make the numbers trustworthy:

* **Determinism** — each scenario is seeded and returns a
  ``fingerprint`` (final clock, event count, delivery counters) whose
  SHA-256 ``digest`` must be identical run-to-run and engine-to-engine.
  The CI perf-smoke job runs every scenario twice and compares digests;
  :mod:`tests.test_perfbench` compares full traced timelines against
  checked-in pre-optimization captures.
* **Report-only thresholds** — wall-clock numbers are recorded, never
  hard-gated, so shared-runner noise cannot make CI flaky.

Run from the command line via ``python -m repro bench`` or
``python benchmarks/bench_engine.py``; compare two result files with
``python tools/perf_report.py --compare old.json new.json``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .config import NectarConfig
from .sim import Simulator, units

__all__ = [
    "BenchResult",
    "SCENARIOS",
    "Scenario",
    "capture_timeline",
    "run_scenario",
    "run_suite",
    "write_results",
]

SEED = 1989

#: Schema tag written into every results file.
SCHEMA = "nectar-bench-engine/1"


@dataclass
class BenchResult:
    """One scenario's measurement."""

    scenario: str
    events: int
    sim_ns: int
    wall_s: float
    fingerprint: dict[str, Any] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def digest(self) -> str:
        """SHA-256 over the deterministic end-state (not wall time)."""
        payload = json.dumps(
            {"scenario": self.scenario, "events": self.events,
             "sim_ns": self.sim_ns, "fingerprint": self.fingerprint},
            sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> dict[str, Any]:
        return {
            "events": self.events,
            "sim_ns": self.sim_ns,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "digest": self.digest,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class Scenario:
    """A named, seeded scenario the harness can run."""

    name: str
    description: str
    build: Callable[[bool], "tuple[Any, Callable[[], dict]]"]

    def run(self) -> BenchResult:
        """Execute once, untraced, timing only the simulation drive."""
        system, drive = self.build(False)
        sim = system.sim if hasattr(system, "sim") else system
        start = time.perf_counter()
        fingerprint = drive()
        wall = time.perf_counter() - start
        return BenchResult(self.name, sim.events_processed, sim.now,
                           wall, fingerprint)


# ----------------------------------------------------------------------
# scenario definitions (fixed seed, deterministic)
# ----------------------------------------------------------------------

def _workload_fingerprint(system, result) -> dict[str, Any]:
    recorder = result.recorder
    return {
        "sent": recorder.sent,
        "delivered": recorder.delivered,
        "errors": recorder.errors,
        "final_now": system.now,
        "hub_counters": {
            name: dict(sorted(hub.counters.items()))
            for name, hub in sorted(system.hubs.items())
        },
    }


def _build_hotspot(trace: bool):
    from .topology import single_hub_system
    from .workload import Workload
    system = single_hub_system(6, cfg=NectarConfig(seed=SEED))
    if trace:
        system.tracer.enable()
    workload = Workload(system, pattern="hotspot", arrivals="poisson",
                        mode="open", message_bytes=512, offered_load=0.35,
                        warmup_ns=units.ms(0.5), duration_ns=units.ms(3),
                        drain_ns=units.ms(1), salt="bench")

    def drive() -> dict[str, Any]:
        result = workload.run()
        return _workload_fingerprint(system, result)

    return system, drive


def _build_fault_campaign(trace: bool):
    from .faults import build_campaign
    from .topology import single_hub_system
    from .workload import Workload
    cfg = NectarConfig(seed=SEED)
    system = single_hub_system(4, cfg=cfg)
    if trace:
        system.tracer.enable()
    system.inject_faults(build_campaign("drop-burst", cfg))
    workload = Workload(system, pattern="uniform", arrivals="poisson",
                        mode="closed", message_bytes=512, offered_load=0.2,
                        window_depth=2, warmup_ns=units.ms(1),
                        duration_ns=units.ms(5), drain_ns=units.ms(2),
                        salt="bench")

    def drive() -> dict[str, Any]:
        result = workload.run()
        fingerprint = _workload_fingerprint(system, result)
        fingerprint["faults_injected"] = \
            system.fault_injector.counters["injected"]
        return fingerprint

    return system, drive


def _build_resilience_flap(trace: bool):
    from .faults import build_campaign
    from .topology import dual_link_system
    from .workload import Workload
    cfg = NectarConfig(seed=SEED)
    system = dual_link_system(3, cfg=cfg)
    if trace:
        system.tracer.enable()
    system.enable_resilience()
    warmup, duration = units.ms(1), units.ms(4)
    system.inject_faults(build_campaign(
        "hub-link-flap", cfg, start_ns=warmup,
        horizon_ns=warmup + duration))
    workload = Workload(system, pattern="uniform", arrivals="poisson",
                        mode="open", message_bytes=512, offered_load=0.2,
                        warmup_ns=warmup, duration_ns=duration,
                        drain_ns=units.ms(2), salt="bench")

    def drive() -> dict[str, Any]:
        result = workload.run()
        fingerprint = _workload_fingerprint(system, result)
        fingerprint["reroutes"] = \
            system.resilience.counters.get("reroutes", 0)
        return fingerprint

    return system, drive


def _build_wire_integrity(trace: bool):
    """Macro scenario for the wire layer: real bytes end to end.

    Every message carries actual data, so the send side pays
    fragmentation and Fletcher-16 sealing and the receive side pays
    verification and reassembly — the paths the blocked checksum,
    memoized :meth:`Payload.seal`, and memoryview slicing optimize.
    Receivers hash the reassembled bytes; the digest of those hashes is
    part of the fingerprint, so a single corrupted or misordered byte
    anywhere in the pipeline fails the determinism check.
    """
    import random as _random

    from .topology import single_hub_system
    system = single_hub_system(4, cfg=NectarConfig(seed=SEED))
    if trace:
        system.tracer.enable()
    sim = system.sim
    names = sorted(system.cabs)
    #: Per sender: packet-mode messages exercise fragmentation and
    #: reassembly; circuit-mode messages carry one large checksummed
    #: payload each ("circuit switching must be used for larger
    #: packets", §4.2.3).
    shape = [("packet", 8192)] * 8 + [("circuit", 49152)] * 6
    expected = {name: 0 for name in names}
    plans = {}
    for index, src in enumerate(names):
        rng = _random.Random((SEED << 4) | index)
        plan = []
        for seq, (mode, size) in enumerate(shape):
            dst = names[(index + 1 + seq % (len(names) - 1)) % len(names)]
            plan.append((dst, mode, rng.randbytes(size)))
            expected[dst] += 1
        plans[src] = plan
    received: dict[str, str] = {}

    def sender(stack, plan):
        for dst, mode, body in plan:
            yield from stack.transport.datagram.send(
                dst, "sink", data=body, mode=mode)

    def receiver(stack, count):
        mailbox = stack.create_mailbox("sink", capacity=64)
        digest = hashlib.sha256()
        for _ in range(count):
            message = yield from stack.kernel.wait(mailbox.get())
            digest.update(message.src.encode())
            digest.update(message.data)
        received[stack.name] = digest.hexdigest()

    def drive() -> dict[str, Any]:
        for name in names:
            stack = system.cabs[name]
            stack.spawn(receiver(stack, expected[name]),
                        name=f"{name}-sink")
        for name in names:
            stack = system.cabs[name]
            stack.spawn(sender(stack, plans[name]), name=f"{name}-src")
        system.run()
        return {
            "final_now": sim.now,
            "delivered": dict(sorted(received.items())),
            "hub_counters": {
                name: dict(sorted(hub.counters.items()))
                for name, hub in sorted(system.hubs.items())
            },
        }

    return system, drive


def _build_timeout_storm(trace: bool):
    """Engine-only scenario: coroutine fan-out of short timeouts.

    No hardware model at all — this isolates the agenda, Timeout, and
    process-resume machinery the macro scenarios sit on.
    """
    sim = Simulator()
    nprocs, steps = 300, 150

    def worker(index: int):
        for step in range(steps):
            yield sim.timeout((index * 7 + step * 3) % 50 + 1)
        return index

    def drive() -> dict[str, Any]:
        for index in range(nprocs):
            sim.process(worker(index), name=f"storm{index}")
        sim.run()
        return {"final_now": sim.now, "events": sim.events_processed}

    return sim, drive


def _build_trace_disabled(trace: bool):
    """Micro scenario for the disabled-tracing hot path.

    A HUB's ``count()`` runs once per command/packet hop; with tracing
    disabled it must cost one attribute check, not a ``Tracer.record``
    call per event.  This scenario hammers exactly that path.
    """
    from .hardware import Hub
    from .sim import Tracer
    cfg = NectarConfig(seed=SEED)
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    hub = Hub(sim, "hub0", cfg.hub, cfg.fiber, tracer=tracer)
    iterations = 200_000

    def drive() -> dict[str, Any]:
        count = hub.count
        for _ in range(iterations):
            count("bench_probe")
        # Report iterations as "events" so events/sec == emissions/sec.
        sim.events_processed += iterations
        return {"emissions": iterations,
                "counter": hub.counters["bench_probe"],
                "records": len(tracer.records)}

    return sim, drive


def _build_collective(mode: str):
    """E-COL scenario factory: collectives under hotspot contention.

    Eight ranks run ``rounds`` of allreduce + barrier through the iPSC
    library while every other CAB hammers cab0 with 512-byte datagrams —
    the hotspot pattern that congests software trees rooted at rank 0.
    One scenario per execution path (``hub`` offload, software ``tree``,
    hypercube ``exchange``) so ``tools/perf_report.py`` and the E-COL
    benchmark can compare completion latency at identical offered noise.
    """
    def build(trace: bool):
        from dataclasses import replace

        from .ipsc import IpscLibrary
        from .nectarine import NectarineRuntime
        from .topology import single_hub_system
        cfg = NectarConfig(seed=SEED)
        cfg = cfg.with_overrides(
            collectives=replace(cfg.collectives, mode=mode))
        system = single_hub_system(8, cfg=cfg)
        if trace:
            system.tracer.enable()
        runtime = NectarineRuntime(system)
        ranks = 8
        rounds = 12
        noise_messages = 40
        library = IpscLibrary(
            runtime, [system.cab(f"cab{i}") for i in range(ranks)])
        totals: dict[int, int] = {}
        done_ns: dict[int, int] = {}

        def body(process):
            total = 0
            for round_no in range(rounds):
                total = yield from process.gisum(
                    process.mynode() + round_no + 1)
                yield from process.gsync()
            totals[process.mynode()] = total
            done_ns[process.mynode()] = system.now

        def noise(stack):
            for _ in range(noise_messages):
                yield from stack.transport.datagram.send(
                    "cab0", "noise", size=512)

        def drain(stack, count):
            mailbox = stack.create_mailbox("noise", capacity=64)
            for _ in range(count):
                yield from stack.kernel.wait(mailbox.get())

        def drive() -> dict[str, Any]:
            hot = system.cab("cab0")
            hot.spawn(drain(hot, (ranks - 1) * noise_messages),
                      name="noise-drain")
            for index in range(1, ranks):
                stack = system.cab(f"cab{index}")
                stack.spawn(noise(stack), name=f"noise{index}")
            library.start_all(body)
            system.run()
            return {
                "mode": mode,
                "totals": dict(sorted(totals.items())),
                "done_ns": dict(sorted(done_ns.items())),
                "finish_ns": max(done_ns.values()),
                "hub_counters": {
                    name: dict(sorted(hub.counters.items()))
                    for name, hub in sorted(system.hubs.items())
                },
            }

        return system, drive

    return build


def _build_scaleout(scenario_name: str):
    """E-SCL scenario factory: large-fabric shift-permutation traffic.

    Runs the scale-out workload single-process so the perf harness
    tracks the same fabrics the partitioned runs shard; the partitioned
    digests are asserted against these runs by ``python -m repro
    scaleout --verify`` and the CI scale-out smoke.
    """
    def build(trace: bool):
        from .scaleout import scenarios as scaleout_scenarios
        from .scaleout import spawn_traffic
        from .topology.fabrics import build_system
        scenario = scaleout_scenarios()[scenario_name]
        system = build_system(scenario.fabric, scenario.config())
        if trace:
            system.tracer.enable()
        traffic = spawn_traffic(scenario, system)

        def drive() -> dict[str, Any]:
            system.run()
            return traffic.fragment()

        return system, drive

    return build


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario("hotspot", "open-loop hotspot workload, 6 CABs, 3 ms",
                 _build_hotspot),
        Scenario("fault-campaign",
                 "closed-loop RPCs through a drop-burst campaign",
                 _build_fault_campaign),
        Scenario("resilience-flap",
                 "self-healing dual-link system under hub-link flaps",
                 _build_resilience_flap),
        Scenario("wire-integrity",
                 "64 x 8 KB real-byte messages: fragment, checksum, "
                 "reassemble, verify",
                 _build_wire_integrity),
        Scenario("timeout-storm",
                 "engine-only: 300 processes x 150 chained timeouts",
                 _build_timeout_storm),
        Scenario("trace-disabled",
                 "micro: per-event cost of disabled tracing",
                 _build_trace_disabled),
        Scenario("collective-hub",
                 "E-COL: 8-rank allreduce+barrier rounds, HUB-offloaded, "
                 "under hotspot noise",
                 _build_collective("hub")),
        Scenario("collective-tree",
                 "E-COL: 8-rank allreduce+barrier rounds, software k-ary "
                 "tree, under hotspot noise",
                 _build_collective("tree")),
        Scenario("collective-exchange",
                 "E-COL: 8-rank allreduce+barrier rounds, hypercube "
                 "dimension exchange, under hotspot noise",
                 _build_collective("exchange")),
        Scenario("scaleout-torus-64",
                 "E-SCL: 64-CAB 4D torus, shift-permutation datagrams "
                 "(single-process reference for partitioned digests)",
                 _build_scaleout("escl-torus-64")),
        Scenario("scaleout-torus-256",
                 "E-SCL: 256-CAB 4x4x4x4 torus, shift-permutation "
                 "datagrams",
                 _build_scaleout("escl-torus-256")),
    )
}

#: The scenarios CI's perf-smoke job runs (kept quick and stable).
SMOKE_SCENARIOS = ("hotspot", "timeout-storm")


def run_scenario(name: str, repeat: int = 1) -> BenchResult:
    """Run one scenario ``repeat`` times; keep the fastest wall clock.

    The fingerprint must be identical across repeats — a mismatch means
    the scenario is not deterministic and the measurement is invalid.
    """
    scenario = SCENARIOS[name]
    best: Optional[BenchResult] = None
    for _ in range(max(1, repeat)):
        result = scenario.run()
        if best is not None and result.digest != best.digest:
            raise RuntimeError(
                f"scenario {name!r} is not deterministic: "
                f"{result.digest} != {best.digest}")
        if best is None or result.wall_s < best.wall_s:
            best = result
    assert best is not None
    return best


def capture_timeline(name: str) -> list[tuple[int, str, str]]:
    """Run a scenario traced; return its ``(time, source, kind)`` timeline.

    This is the determinism contract's strongest witness: the full
    interleaving of every traced hardware/fault event.  Identity-bearing
    fields (packet ids) are excluded so captures survive process reuse.
    """
    scenario = SCENARIOS[name]
    system, drive = scenario.build(True)
    drive()
    tracer = getattr(system, "tracer", None)
    if tracer is None:
        return []
    return [(record.time, record.source, record.kind)
            for record in tracer.records]


def run_suite(names: Optional[list[str]] = None,
              repeat: int = 1) -> dict[str, dict[str, Any]]:
    """Run the named scenarios (default: all) and summarize."""
    results = {}
    for name in names or list(SCENARIOS):
        results[name] = run_scenario(name, repeat=repeat).summary()
    return results


def write_results(path: str, results: dict[str, dict[str, Any]],
                  label: str, baseline: Optional[dict] = None) -> dict:
    """Write a ``BENCH_engine.json`` document (merging a baseline run).

    ``baseline`` is an earlier document (e.g. the pre-optimization
    capture) whose runs are preserved so the file carries the full
    before/after trajectory.
    """
    document: dict[str, Any] = {"schema": SCHEMA, "seed": SEED, "runs": {}}
    if baseline and baseline.get("schema") == SCHEMA:
        document["runs"].update(baseline.get("runs", {}))
    document["runs"][label] = {
        "scenarios": {name: results[name] for name in sorted(results)},
        "descriptions": {name: SCENARIOS[name].description
                         for name in sorted(results)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        # Runs stay in capture order (oldest first) — tools/perf_report.py
        # reads "last run over first" as the before/after speedup.
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document
