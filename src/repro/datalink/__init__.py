"""Datalink layer: routing, circuit/packet switching, multicast (§4.2, §6.2.1)."""

from .protocol import Datalink
from .routing import Hop, Route, Router, TreeEdge

__all__ = ["Datalink", "Hop", "Route", "Router", "TreeEdge"]
