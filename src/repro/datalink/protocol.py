"""The CAB datalink layer (§6.2.1, §4.2).

Transfers data packets between CABs using HUB commands, manages HUB
connections, and recovers from lost commands and framing errors.  The
frequent simple case — a packet to a node in the same HUB cluster — is a
single HUB command prepended to the data; complicated, less frequent
operations (multi-hop circuits, multicast, error recovery) are composed
in software, exactly as §6.2.1 prescribes.

Send modes:

* ``packet`` — packet switching with ``test open with retry`` flow
  control at every hop (§4.2.3); payload must fit the 1 KB input queue.
* ``circuit`` — a command packet opens the whole route, the CAB waits for
  the reply, then streams the data packet and a travelling ``close all``
  (§4.2.1); required for payloads larger than the input queue.
* ``auto`` — packet switching when the packet fits, else circuit.
"""

from __future__ import annotations

import dataclasses
import random
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Optional

from ..config import NectarConfig
from ..errors import CollectiveError, DatalinkError
from ..hardware.frames import HubCommand, Packet, Payload
from ..hardware.hub_commands import CommandOp
from ..sim import Resource
from .routing import Route, Router, TreeEdge

__all__ = ["Datalink"]

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.cab import CabBoard
    from ..kernel.threads import CabKernel


class Datalink:
    """Per-CAB datalink engine."""

    def __init__(self, cab: "CabBoard", kernel: "CabKernel", router: Router,
                 cfg: NectarConfig,
                 rng: Optional[random.Random] = None) -> None:
        self.cab = cab
        self.kernel = kernel
        self.router = router
        self.cfg = cfg
        self.sim = cab.sim
        self.rng = rng or cfg.rng(f"datalink:{cab.name}")
        #: Transport hook: ``classify(packet) -> Optional[deliver]`` where
        #: ``deliver(packet)`` runs after the inbound DMA completes.  The
        #: classification is the transport upcall of §6.2.1.
        self.classify: Optional[Callable[[Packet],
                                         Optional[Callable[[Packet], None]]]] \
            = None
        self.counters: dict[str, int] = defaultdict(int)
        #: Serialises sends from this CAB's input port.  Concurrent
        #: threads must not interleave while a circuit is held open:
        #: further opens from the same input port would create crossbar
        #: fan-out and the travelling closes would tear each other's
        #: connections down.
        self._port_lock = Resource(cab.sim, capacity=1)
        cab.on_receive(self._receive_interrupt)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    #: Datalink counters exported as sampled time series: the error/
    #: recovery signals (timeouts, retries, overflows) plus traffic
    #: volume in both switching modes.
    OBSERVED_COUNTERS = ("packets_sent_packet_mode",
                         "packets_sent_circuit_mode", "packets_received",
                         "reply_timeouts", "circuit_retries",
                         "input_queue_overflows", "framing_errors",
                         "link_probes_sent", "link_probe_timeouts")

    def register_metrics(self, registry, sampler) -> None:
        """Register this CAB's datalink counters with the observer."""
        base = self.cab.name
        for key in self.OBSERVED_COUNTERS:
            sampler.add_probe(
                f"{base}.dl.{key}",
                lambda key=key: float(self.counters.get(key, 0)),
                description=f"cumulative datalink counter {key!r}",
                unit="events")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _max_packet_payload(self) -> int:
        """Largest payload a packet-switched packet may carry."""
        hub = self.cfg.hub
        overhead = hub.framing_bytes + self.cfg.transport.header_bytes
        return hub.input_queue_bytes - overhead - 8 * hub.command_bytes

    def packet_fits(self, payload_size: int) -> bool:
        return payload_size <= self._max_packet_payload()

    def _packet(self, commands: list[HubCommand],
                payload: Optional[Payload], close_after: bool) -> Packet:
        hub = self.cfg.hub
        return Packet(self.cab.name, commands=commands, payload=payload,
                      close_after=close_after,
                      command_bytes=hub.command_bytes,
                      framing_bytes=hub.framing_bytes,
                      header_bytes=self.cfg.transport.header_bytes
                      if payload is not None else 0)

    def _command(self, op: CommandOp, hub_name: str, param: int) -> HubCommand:
        return HubCommand(op, hub_name, param, origin=self.cab.name)

    # ------------------------------------------------------------------
    # send paths (thread context; all generators)
    # ------------------------------------------------------------------

    def send(self, dst_cab: str, payload: Payload, mode: str = "auto"):
        """Send one payload to ``dst_cab``; returns when the tail has left
        this CAB (delivery is asynchronous at the receiver)."""
        route = self.router.route(self.cab.name, dst_cab)
        yield from self.send_on_route(route, payload, mode)

    def send_on_route(self, route: Route, payload: Payload,
                      mode: str = "auto"):
        if mode not in ("auto", "packet", "circuit"):
            raise DatalinkError(f"unknown send mode {mode!r}")
        if mode == "auto":
            mode = "packet" if self.packet_fits(payload.size) else "circuit"
        if mode == "packet" and not self.packet_fits(payload.size):
            raise DatalinkError(
                f"payload of {payload.size} B exceeds the HUB input queue; "
                f"use circuit switching (§4.2.3)")
        yield from self.kernel.compute(self.cfg.datalink.send_overhead_ns)
        self.cab.checksum.seal(payload)
        checksum_cost = self.cab.checksum.cost_ns(payload.size)
        if checksum_cost:
            yield from self.kernel.compute(checksum_cost)
        grant = self._port_lock.acquire()
        yield grant
        try:
            if mode == "packet":
                yield from self._send_packet_switched(route, payload)
            else:
                yield from self._send_circuit(route, payload)
        finally:
            self._port_lock.release()

    def _send_packet_switched(self, route: Route, payload: Payload):
        """One packet: test-opens, data, travelling close (§4.2.3)."""
        commands = [self._command(CommandOp.TEST_OPEN_RETRY,
                                  hop.hub.name, hop.out_port)
                    for hop in route.hops]
        packet = self._packet(commands, payload, close_after=True)
        yield from self._await_first_hop_ready()
        self.counters["packets_sent_packet_mode"] += 1
        yield from self.cab.dma.send_packet(packet)

    def _await_first_hop_ready(self):
        """Our own HUB input queue must be ready for a new packet."""
        while not self.cab.first_hop_ready:
            yield self.cab.ready_changed.wait()

    def _send_circuit(self, route: Route, payload: Payload):
        """Open the route, await the reply, stream data, close (§4.2.1)."""
        yield from self.open_circuit(route)
        data = self._packet([], payload, close_after=True)
        self.counters["packets_sent_circuit_mode"] += 1
        yield from self.cab.dma.send_packet(data)

    def open_circuit(self, route: Route):
        """Establish a circuit along ``route`` with full error recovery.

        Retries with jittered backoff after reply timeouts, tearing down
        partial connections with ``close all`` in between (§4.2.1).
        """
        dl_cfg = self.cfg.datalink
        attempts = 0
        while True:
            attempts += 1
            commands = [self._command(CommandOp.OPEN_RETRY,
                                      hop.hub.name, hop.out_port)
                        for hop in route.hops[:-1]]
            last = route.hops[-1]
            final = self._command(CommandOp.OPEN_RETRY_REPLY,
                                  last.hub.name, last.out_port)
            commands.append(final)
            reply_event = self.cab.expect_reply(final.seq)
            packet = self._packet(commands, None, close_after=False)
            yield from self.cab.dma.send_packet(packet)
            outcome = yield from self._await_reply(reply_event,
                                                   dl_cfg.reply_timeout_ns)
            if outcome is not None and outcome.ok:
                self.counters["circuits_opened"] += 1
                return
            self.cab.cancel_reply(final.seq)
            self.counters["circuit_retries"] += 1
            if attempts >= dl_cfg.max_route_attempts:
                raise DatalinkError(
                    f"{self.cab.name}: circuit to {route.dst} failed after "
                    f"{attempts} attempts")
            yield from self.close_route()
            backoff = dl_cfg.retry_backoff_ns * attempts
            jitter = self.rng.randrange(dl_cfg.retry_backoff_ns or 1)
            yield from self.kernel.sleep(backoff + jitter)

    def _await_reply(self, reply_event, timeout_ns: int):
        """Wait for a reply with a hardware-timer deadline."""
        deadline = self.sim.timeout(timeout_ns)
        result = yield self.sim.any_of([reply_event, deadline])
        yield from self.kernel.compute(self.cfg.kernel.wakeup_ns)
        if reply_event in result:
            return result[reply_event]
        self.counters["reply_timeouts"] += 1
        return None

    def close_route(self):
        """Send a travelling ``close all`` to tear down our connections."""
        packet = self._packet([HubCommand(CommandOp.CLOSE_ALL, "*",
                                          origin=self.cab.name)],
                              None, close_after=False)
        self.counters["close_alls_sent"] += 1
        yield from self.cab.dma.send_packet(packet)

    # ------------------------------------------------------------------
    # multicast (§4.2.2, §4.2.4)
    # ------------------------------------------------------------------

    def multicast(self, dst_cabs: list[str], payload: Payload,
                  mode: str = "auto"):
        """Send one payload to several CABs over a multicast tree.

        Command lists are consumed head-first as the packet passes each
        HUB, and every opened branch receives the *identical* remaining
        byte stream — so one packet can only open a linear chain of HUBs
        with leaf taps (the shape of the paper's Figure 7 example).
        Destinations whose routes branch into sibling HUB subtrees are
        partitioned into prefix-chain groups and sent as one multicast
        packet per group.
        """
        if mode == "auto":
            mode = "packet" if self.packet_fits(payload.size) else "circuit"
        edge_groups = [self.router.multicast_edges(self.cab.name, group)
                       for group in self._chain_groups(dst_cabs)]
        yield from self.kernel.compute(self.cfg.datalink.send_overhead_ns)
        self.cab.checksum.seal(payload)
        checksum_cost = self.cab.checksum.cost_ns(payload.size)
        if checksum_cost:
            yield from self.kernel.compute(checksum_cost)
        grant = self._port_lock.acquire()
        yield grant
        try:
            for index, edges in enumerate(edge_groups):
                body = payload if index == 0 else dataclasses.replace(payload)
                if mode == "packet":
                    yield from self._multicast_packet(edges, body)
                else:
                    yield from self._multicast_circuit(edges, body)
        finally:
            self._port_lock.release()

    def _chain_groups(self, dst_cabs: list[str]) -> list[list[str]]:
        """Partition destinations into groups with linear HUB chains.

        Lexicographically sorted hub paths put prefix-related chains
        next to each other; a group grows while each new path extends
        the group's longest chain, and breaks at the first divergence.
        Destinations on a single shared HUB (the common case) and the
        Figure 7 shape stay a single group, preserving one-packet
        multicast for them.
        """
        src_hub = self.cab.hub_port.hub
        keyed = []
        for dst in dst_cabs:
            dst_hub, _port = self.router.cab_location(dst)
            keyed.append((tuple(self.router.hub_path(src_hub.name,
                                                     dst_hub.name)), dst))
        keyed.sort(key=lambda item: item[0])
        groups: list[list[str]] = []
        longest: Optional[tuple] = None
        for chain, dst in keyed:
            if longest is not None and chain[:len(longest)] == longest:
                groups[-1].append(dst)
            else:
                groups.append([dst])
            longest = chain
        return groups

    def _multicast_packet(self, edges: list[TreeEdge], payload: Payload):
        commands = [self._command(CommandOp.TEST_OPEN_RETRY,
                                  edge.hub.name, edge.out_port)
                    for edge in edges]
        packet = self._packet(commands, payload, close_after=True)
        yield from self._await_first_hop_ready()
        self.counters["multicasts_packet_mode"] += 1
        yield from self.cab.dma.send_packet(packet)

    def _multicast_circuit(self, edges: list[TreeEdge], payload: Payload):
        commands = []
        leaf_commands = []
        reply_events = []
        for edge in edges:
            op = CommandOp.OPEN_RETRY_REPLY if edge.is_leaf \
                else CommandOp.OPEN_RETRY
            command = self._command(op, edge.hub.name, edge.out_port)
            commands.append(command)
            if edge.is_leaf:
                leaf_commands.append(command)
                reply_events.append(self.cab.expect_reply(command.seq))
        packet = self._packet(commands, None, close_after=False)
        yield from self.cab.dma.send_packet(packet)
        # "After receiving replies to both of the open with retry and
        # reply commands, CAB2 sends the data packet" (§4.2.2).
        deadline = self.cfg.datalink.reply_timeout_ns
        all_replies = self.sim.all_of(reply_events)
        timeout = self.sim.timeout(deadline)
        result = yield self.sim.any_of([all_replies, timeout])
        yield from self.kernel.compute(self.cfg.kernel.wakeup_ns)
        if all_replies not in result:
            for command in leaf_commands:
                self.cab.cancel_reply(command.seq)
            yield from self.close_route()
            raise DatalinkError(
                f"{self.cab.name}: multicast circuit establishment timed out")
        self.counters["multicasts_circuit_mode"] += 1
        data = self._packet([], payload, close_after=True)
        yield from self.cab.dma.send_packet(data)

    # ------------------------------------------------------------------
    # management-plane helpers (status, supervisor)
    # ------------------------------------------------------------------

    def command_first_hop(self, op: CommandOp, param: int = 0):
        """Send an unreplied management command to our attached HUB
        (resets, enables, ready-bit writes: generator)."""
        hub = self.cab.hub_port.hub
        packet = self._packet([self._command(op, hub.name, param)],
                              None, close_after=False)
        yield from self.cab.dma.send_packet(packet)

    def probe_link(self, hub_a, port_a: int, hub_b, port_b: int,
                   timeout_ns: Optional[int] = None):
        """Probe one specific inter-HUB fiber pair (generator).

        Opens ``hub_a.port_a`` from our input port (``open with retry``)
        and sends an ``ECHO`` addressed to ``hub_b`` through it, so the
        echo crosses exactly the probed forward fiber and its reply
        returns over the reverse fiber — a dead direction on either
        fiber, or a disabled far port, times the probe out.  The caller
        must be attached to ``hub_a``.  Returns the measured round-trip
        time in ns, or ``None`` on timeout.  The partial connection is
        torn down with a travelling ``close all`` either way.
        """
        if self.cab.hub_port is None or self.cab.hub_port.hub is not hub_a:
            raise DatalinkError(
                f"{self.cab.name} cannot probe from {hub_a.name}: "
                f"not attached there")
        yield from self.kernel.compute(self.cfg.datalink.send_overhead_ns)
        grant = self._port_lock.acquire()
        yield grant
        try:
            open_cmd = self._command(CommandOp.OPEN_RETRY, hub_a.name,
                                     port_a)
            echo = self._command(CommandOp.ECHO, hub_b.name, port_b)
            reply_event = self.cab.expect_reply(echo.seq)
            packet = self._packet([open_cmd, echo], None, close_after=False)
            started = self.sim.now
            self.counters["link_probes_sent"] += 1
            yield from self.cab.dma.send_packet(packet)
            reply = yield from self._await_reply(
                reply_event,
                timeout_ns or self.cfg.datalink.reply_timeout_ns)
            rtt = None
            if reply is not None and reply.ok:
                rtt = self.sim.now - started
            else:
                self.cab.cancel_reply(echo.seq)
                self.counters["link_probe_timeouts"] += 1
            yield from self.close_route()
            return rtt
        finally:
            self._port_lock.release()

    def query_first_hop(self, op: CommandOp, param: int = 0,
                        timeout_ns: Optional[int] = None):
        """Send a single replied command to our directly attached HUB."""
        hub = self.cab.hub_port.hub
        command = self._command(op, hub.name, param)
        reply_event = self.cab.expect_reply(command.seq)
        packet = self._packet([command], None, close_after=False)
        yield from self.cab.dma.send_packet(packet)
        reply = yield from self._await_reply(
            reply_event, timeout_ns or self.cfg.datalink.reply_timeout_ns)
        if reply is None:
            self.cab.cancel_reply(command.seq)
            raise DatalinkError(f"no reply to {op.name} from {hub.name}")
        return reply

    # ------------------------------------------------------------------
    # in-network collectives (repro.collectives)
    # ------------------------------------------------------------------

    def collective_command(self, op: CommandOp, param: int = 0,
                           arg: Optional[dict] = None,
                           timeout_ns: Optional[int] = None):
        """Issue one collective command to our attached HUB (generator).

        Returns the unit's reply.  Unlike :meth:`query_first_hop` the
        reply may arrive much later (a barrier waits for its whole
        group), so the deadline comes from ``cfg.collectives``; on
        timeout this raises :class:`CollectiveError` — a collective
        never hangs.
        """
        hub = self.cab.hub_port.hub
        command = self._command(op, hub.name, param)
        command.arg = arg
        reply_event = self.cab.expect_reply(command.seq)
        packet = self._packet([command], None, close_after=False)
        self.counters["collective_commands_sent"] += 1
        yield from self.cab.dma.send_packet(packet)
        reply = yield from self._await_reply(
            reply_event,
            timeout_ns or self.cfg.collectives.reply_timeout_ns)
        if reply is None:
            self.cab.cancel_reply(command.seq)
            self.counters["collective_reply_timeouts"] += 1
            raise CollectiveError(
                f"{self.cab.name}: no reply to {op.name} "
                f"group/reg {param} from {hub.name}")
        return reply

    def collective_command_at(self, target_hub_name: str,
                              op: CommandOp, param: int = 0,
                              arg: Optional[dict] = None,
                              timeout_ns: Optional[int] = None):
        """Issue one collective command to a *remote* HUB (generator).

        Opens a circuit along the inter-HUB path (first parallel link at
        each hop), sends the command with the circuit held so the reply
        can cycle-steal back over the reverse fibers, then tears the
        circuit down with a travelling ``close all``.  Used for
        fetch-and-add on a register homed on another HUB; barrier and
        reduce instead reach remote HUBs through their reduction tree.
        """
        local_hub = self.cab.hub_port.hub
        hubs = self.router.hub_path(local_hub.name, target_hub_name)
        yield from self.kernel.compute(self.cfg.datalink.send_overhead_ns)
        grant = self._port_lock.acquire()
        yield grant
        try:
            commands = []
            for here, there in zip(hubs, hubs[1:]):
                port_a, _ = self.router.parallel_links(here, there)[0]
                commands.append(self._command(CommandOp.OPEN_RETRY,
                                              here, port_a))
            command = self._command(op, target_hub_name, param)
            command.arg = arg
            commands.append(command)
            reply_event = self.cab.expect_reply(command.seq)
            packet = self._packet(commands, None, close_after=False)
            self.counters["collective_commands_sent"] += 1
            yield from self.cab.dma.send_packet(packet)
            reply = yield from self._await_reply(
                reply_event,
                timeout_ns or self.cfg.collectives.reply_timeout_ns)
            if reply is None:
                self.cab.cancel_reply(command.seq)
                self.counters["collective_reply_timeouts"] += 1
            if len(hubs) > 1:
                yield from self.close_route()
            if reply is None:
                raise CollectiveError(
                    f"{self.cab.name}: no reply to {op.name} "
                    f"group/reg {param} from {target_hub_name}")
            return reply
        finally:
            self._port_lock.release()

    # ------------------------------------------------------------------
    # receive path (interrupt context)
    # ------------------------------------------------------------------

    def _receive_interrupt(self, packet: Packet, wire_size: int,
                           head_time: int, tail_time: int):
        """The datalink receive interrupt handler (§6.2.1).

        Invoked by the start-of-packet signal; performs the transport
        upcall, sets up the inbound DMA, and hands the packet to the
        transport once the DMA completes.
        """
        cpu = self.cab.cpu
        yield from cpu.execute_interrupt(self.cfg.datalink.receive_overhead_ns)
        if packet.meta.get("framing_error"):
            self.counters["framing_errors"] += 1
            self.cab.signal_input_drained()
            return
        if packet.payload is None:
            # Pure command traffic (e.g. a travelling close, or stray
            # multicast commands): nothing for the transport.
            self.counters["command_only_packets"] += 1
            self.cab.signal_input_drained()
            return
        deliver = None
        if self.classify is not None:
            deliver = self.classify(packet)
        if deliver is None:
            self.counters["drops_no_consumer"] += 1
            self.cab.signal_input_drained()
            return
        # The upcall must return before the input queue overflows
        # (§6.2.1): if we are too late starting the DMA, the tail of the
        # packet has been lost.
        if self.sim.now - head_time > self.cfg.datalink.upcall_budget_ns:
            self.counters["input_queue_overflows"] += 1
            self.cab.signal_input_drained()
            return
        yield from self.cab.dma.drain_input(wire_size, tail_time)
        self.cab.signal_input_drained()
        self.counters["packets_received"] += 1
        deliver(packet)
