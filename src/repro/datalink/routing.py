"""Route planning over arbitrary HUB topologies (§3.1, §4.2).

"The HUB clusters may be connected in any topology appropriate to the
application environment."  The router holds the wiring graph (HUB-HUB
links and CAB attachment points), computes shortest hop paths with BFS,
and merges unicast routes into multicast trees whose DFS linearisation
yields exactly the command sequences of §4.2.2/§4.2.4.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import RouteError, TopologyError

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.hub import Hub


@dataclass(frozen=True)
class Hop:
    """One switching step: at ``hub``, open ``out_port``."""

    hub: "Hub"
    out_port: int


@dataclass(frozen=True)
class Route:
    """A unicast route: the sequence of (hub, output port) hops."""

    src: str
    dst: str
    hops: tuple[Hop, ...]

    @property
    def hub_count(self) -> int:
        return len(self.hops)

    def __str__(self) -> str:
        steps = " -> ".join(f"{hop.hub.name}.p{hop.out_port}"
                            for hop in self.hops)
        return f"{self.src} -> [{steps}] -> {self.dst}"


@dataclass
class TreeEdge:
    """A multicast-tree edge in DFS order.

    ``is_leaf`` marks edges whose output port feeds a destination CAB;
    those get the ``*_reply`` open variant in circuit mode (§4.2.2).
    """

    hub: "Hub"
    out_port: int
    is_leaf: bool
    dst: Optional[str] = None


class _TreeNode:
    __slots__ = ("hub", "leaf_edges", "child_edges", "children")

    def __init__(self, hub: "Hub") -> None:
        self.hub = hub
        self.leaf_edges: list[tuple[int, str]] = []
        self.child_edges: list[int] = []
        self.children: dict[int, "_TreeNode"] = {}


class Router:
    """Static routing tables for one Nectar installation."""

    def __init__(self) -> None:
        self._hubs: dict[str, "Hub"] = {}
        #: hub name -> {neighbour hub name: [(local port, remote port)]}.
        #: Multiple entries per neighbour are parallel links — "there is
        #: no a priori restriction on how many links can be used for
        #: inter-HUB connections" (§3.1); unicast routes spread over
        #: them deterministically by flow.
        self._links: dict[str, dict[str, list[tuple[int, int]]]] = {}
        #: cab name -> (hub, port index on that hub)
        self._cabs: dict[str, tuple["Hub", int]] = {}
        #: (src, dst) -> Route memo (routes are static once built).
        self._route_cache: dict[tuple[str, str], Route] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_hub(self, hub: "Hub") -> None:
        if hub.name in self._hubs:
            raise TopologyError(f"duplicate hub {hub.name}")
        self._hubs[hub.name] = hub
        self._links[hub.name] = {}

    def add_link(self, hub_a: "Hub", port_a: int,
                 hub_b: "Hub", port_b: int) -> None:
        for hub in (hub_a, hub_b):
            if hub.name not in self._hubs:
                raise TopologyError(f"unknown hub {hub.name}")
        # Parallel-link lists stay sorted by port number so a link that
        # goes down and comes back (mark_link_down / mark_link_up) lands
        # in its original position — the flow-hash assignment, and hence
        # every route, is restored exactly.
        self._insert_sorted(hub_a.name, hub_b.name, port_a, port_b)
        self._insert_sorted(hub_b.name, hub_a.name, port_b, port_a)
        self._route_cache.clear()

    def _insert_sorted(self, here: str, there: str,
                       local: int, remote: int) -> None:
        links = self._links[here].setdefault(there, [])
        links.append((local, remote))
        links.sort()

    def add_cab(self, cab_name: str, hub: "Hub", port: int) -> None:
        if cab_name in self._cabs:
            raise TopologyError(f"duplicate CAB {cab_name}")
        if hub.name not in self._hubs:
            raise TopologyError(f"unknown hub {hub.name}")
        self._cabs[cab_name] = (hub, port)
        self._route_cache.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def cab_location(self, cab_name: str) -> tuple["Hub", int]:
        try:
            return self._cabs[cab_name]
        except KeyError:
            raise RouteError(f"unknown CAB {cab_name!r}") from None

    def hub_path(self, src_hub: str, dst_hub: str) -> list[str]:
        """Shortest hub sequence from ``src_hub`` to ``dst_hub`` (BFS)."""
        if src_hub not in self._hubs or dst_hub not in self._hubs:
            raise RouteError(f"unknown hub in {src_hub!r} -> {dst_hub!r}")
        if src_hub == dst_hub:
            return [src_hub]
        parents: dict[str, str] = {src_hub: src_hub}
        frontier = deque([src_hub])
        while frontier:
            current = frontier.popleft()
            for neighbour in sorted(self._links[current]):
                if neighbour in parents:
                    continue
                parents[neighbour] = current
                if neighbour == dst_hub:
                    path = [neighbour]
                    while path[-1] != src_hub:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                frontier.append(neighbour)
        raise RouteError(f"no path between hubs {src_hub} and {dst_hub}")

    @staticmethod
    def _flow_index(src_cab: str, dst_cab: str) -> int:
        # A cryptographic mix: multiplicative/XOR hashes have a linear
        # low bit, which made flows whose names differ in one repeated
        # digit all land on the same parallel link.
        digest = hashlib.blake2s(f"{src_cab}>{dst_cab}".encode(),
                                 digest_size=4).digest()
        return int.from_bytes(digest, "big")

    def _pick_link(self, here: str, there: str, flow: int) -> tuple[int, int]:
        """Choose among parallel links deterministically per flow, so
        distinct CAB pairs spread across the available fibers."""
        links = self._links[here][there]
        return links[flow % len(links)]

    def route(self, src_cab: str, dst_cab: str) -> Route:
        """The hop sequence a packet from ``src_cab`` must open."""
        cached = self._route_cache.get((src_cab, dst_cab))
        if cached is not None:
            return cached
        if src_cab == dst_cab:
            raise RouteError(f"route from {src_cab} to itself")
        src_hub, _src_port = self.cab_location(src_cab)
        dst_hub, dst_port = self.cab_location(dst_cab)
        path = self.hub_path(src_hub.name, dst_hub.name)
        flow = self._flow_index(src_cab, dst_cab)
        hops: list[Hop] = []
        for here, there in zip(path, path[1:]):
            local_port, _remote = self._pick_link(here, there, flow)
            hops.append(Hop(self._hubs[here], local_port))
        hops.append(Hop(dst_hub, dst_port))
        route = Route(src_cab, dst_cab, tuple(hops))
        self._route_cache[(src_cab, dst_cab)] = route
        return route

    # ------------------------------------------------------------------
    # multicast (§4.2.2, §4.2.4)
    # ------------------------------------------------------------------

    def multicast_edges(self, src_cab: str,
                        dst_cabs: Iterable[str]) -> list[TreeEdge]:
        """DFS-linearised multicast tree edges.

        Unicast routes to every destination are merged on common
        prefixes; at each hub, leaf edges (to CABs) come before subtree
        edges, matching the command order of the paper's Figure 7
        example.
        """
        destinations = list(dst_cabs)
        if not destinations:
            raise RouteError("multicast needs at least one destination")
        if len(set(destinations)) != len(destinations):
            raise RouteError(f"duplicate multicast destinations: "
                             f"{destinations}")
        src_hub, _ = self.cab_location(src_cab)
        root = _TreeNode(src_hub)
        for dst in destinations:
            if dst == src_cab:
                raise RouteError(f"multicast from {src_cab} to itself")
            route = self.route(src_cab, dst)
            node = root
            for hop in route.hops[:-1]:
                assert hop.hub is node.hub
                if hop.out_port not in node.children:
                    node.children[hop.out_port] = _TreeNode(
                        self._next_hub(node.hub, hop.out_port))
                    node.child_edges.append(hop.out_port)
                node = node.children[hop.out_port]
            last = route.hops[-1]
            assert last.hub is node.hub
            node.leaf_edges.append((last.out_port, dst))
        edges: list[TreeEdge] = []
        self._linearize(root, edges)
        return edges

    def _next_hub(self, hub: "Hub", out_port: int) -> "Hub":
        for neighbour, links in self._links[hub.name].items():
            for local, _remote in links:
                if local == out_port:
                    return self._hubs[neighbour]
        raise RouteError(f"{hub.name}.p{out_port} is not an inter-hub link")

    def _linearize(self, node: _TreeNode, edges: list[TreeEdge]) -> None:
        for port, dst in node.leaf_edges:
            edges.append(TreeEdge(node.hub, port, is_leaf=True, dst=dst))
        for port in node.child_edges:
            edges.append(TreeEdge(node.hub, port, is_leaf=False))
            self._linearize(node.children[port], edges)

    # ------------------------------------------------------------------

    @property
    def cab_names(self) -> list[str]:
        return sorted(self._cabs)

    @property
    def hub_names(self) -> list[str]:
        return sorted(self._hubs)

    def neighbours(self, hub_name: str) -> dict[str, tuple[int, int]]:
        """First link per neighbour (legacy view; see parallel_links)."""
        return {name: links[0]
                for name, links in self._links.get(hub_name, {}).items()}

    def parallel_links(self, hub_a: str, hub_b: str) -> list[tuple[int, int]]:
        """All fiber pairs between two hubs, as (port on a, port on b)."""
        return list(self._links.get(hub_a, {}).get(hub_b, []))

    # ------------------------------------------------------------------
    # reconfiguration (§4 goal 4: "testing, reconfiguration, and
    # recovery from hardware failures")
    # ------------------------------------------------------------------

    def mark_link_down(self, hub_a: str, hub_b: str,
                       port_a: Optional[int] = None) -> int:
        """Remove a failed inter-HUB link from the routing tables.

        With ``port_a`` given only that parallel link is removed;
        otherwise every link between the two hubs goes.  Existing routes
        are recomputed lazily (the route cache is flushed).  Returns how
        many links were removed.
        """
        forward = self._links.get(hub_a, {}).get(hub_b, [])
        backward = self._links.get(hub_b, {}).get(hub_a, [])
        removed = 0
        if port_a is None:
            removed = len(forward)
            forward.clear()
            backward.clear()
        else:
            for local, remote in list(forward):
                if local == port_a:
                    forward.remove((local, remote))
                    if (remote, local) in backward:
                        backward.remove((remote, local))
                    removed += 1
        if not forward:
            self._links[hub_a].pop(hub_b, None)
            self._links[hub_b].pop(hub_a, None)
        self._route_cache.clear()
        return removed

    def mark_link_up(self, hub_a: str, hub_b: str,
                     port_a: int, port_b: int) -> bool:
        """Reinstate one inter-HUB link after recovery.

        The inverse of :meth:`mark_link_down`: re-adds the ``(port_a,
        port_b)`` parallel link between the two hubs and flushes the
        route cache so flap recovery restores the original topology
        (and, because link lists are kept sorted, the original routes).
        Returns False when the link is already present (idempotent —
        probe and revert timing can race).
        """
        for name in (hub_a, hub_b):
            if name not in self._hubs:
                raise RouteError(f"unknown hub {name!r}")
        forward = self._links[hub_a].get(hub_b, [])
        if (port_a, port_b) in forward:
            return False
        self._insert_sorted(hub_a, hub_b, port_a, port_b)
        self._insert_sorted(hub_b, hub_a, port_b, port_a)
        self._route_cache.clear()
        return True
