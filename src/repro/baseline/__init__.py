"""The 'current LAN' baseline Nectar is compared against (§3.1)."""

from .ethernet import (EthernetLan, EthernetMedium, EthernetStation,
                       LanError, LanHost)

__all__ = ["EthernetLan", "EthernetMedium", "EthernetStation", "LanError",
           "LanHost"]
