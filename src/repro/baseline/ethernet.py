"""Baseline LAN: 10 Mb/s CSMA/CD Ethernet with kernel protocol stacks.

§3.1 claims "the Nectar-net offers at least an order of magnitude
improvement in bandwidth and latency over current LANs", whose profiles
(refs [3,5,11]) are dominated by node software.  This module provides the
comparison system: a shared medium with carrier sense, collisions and
binary exponential backoff, plus hosts that pay late-1980s kernel-stack
costs per packet.

Collision model: stations that begin transmitting in the same simulator
tick collide (stations waiting for a busy medium wake together at its
release, which is where real collisions cluster); they jam for one slot
time and back off.  Finer sub-slot vulnerability windows are below the
fidelity this comparison needs.
"""

from __future__ import annotations

import random
from typing import Optional

from ..config import LanConfig
from ..errors import NectarError
from ..sim import Event, Simulator, Store, units
from ..transport.base import slice_data


class LanError(NectarError):
    """Excessive collisions: the interface gave up on a frame."""


class EthernetMedium:
    """The shared coax segment."""

    def __init__(self, sim: Simulator, cfg: LanConfig,
                 rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.cfg = cfg
        self.rng = rng or random.Random(0)
        self.free_at = 0
        self.collisions = 0
        self.frames_carried = 0
        self.bytes_carried = 0
        self._starters: list[tuple[Event, int]] = []
        self._resolving = False

    @property
    def busy(self) -> bool:
        return self.sim.now < self.free_at

    def attempt(self, frame_ns: int) -> Event:
        """Begin transmitting now; the event fires True (sent) or False
        (collision).  All attempts in the same tick collide."""
        outcome = self.sim.event()
        self._starters.append((outcome, frame_ns))
        if not self._resolving:
            self._resolving = True
            self.sim.call_in(0, self._resolve)
        return outcome

    def _resolve(self) -> None:
        starters, self._starters = self._starters, []
        self._resolving = False
        if len(starters) == 1:
            outcome, frame_ns = starters[0]
            self.free_at = (self.sim.now + frame_ns
                            + self.cfg.interframe_gap_ns)
            self.frames_carried += 1
            outcome.succeed(True)
            return
        self.collisions += 1
        self.free_at = self.sim.now + self.cfg.slot_time_ns
        for outcome, _frame_ns in starters:
            outcome.succeed(False)


class EthernetStation:
    """One network interface on the segment."""

    def __init__(self, medium: EthernetMedium, name: str) -> None:
        self.medium = medium
        self.sim = medium.sim
        self.cfg = medium.cfg
        self.name = name
        self.rx_frames: Store = Store(self.sim)
        self.frames_sent = 0
        self.backoffs = 0
        self._peers: dict[str, "EthernetStation"] = {}

    def register_peer(self, station: "EthernetStation") -> None:
        self._peers[station.name] = station

    def frame_time(self, payload_bytes: int) -> int:
        wire_bytes = max(payload_bytes + self.cfg.frame_overhead_bytes,
                         self.cfg.min_frame_bytes)
        return units.transfer_time(wire_bytes, self.cfg.bytes_per_ns)

    def send_frame(self, dst: str, payload_bytes: int,
                   frame: Optional[dict] = None):
        """CSMA/CD transmission of one frame (generator)."""
        attempts = 0
        backoff_slots = 0
        frame_ns = self.frame_time(payload_bytes)
        while True:
            # Carrier sense: defer while the medium is busy.
            while self.medium.busy:
                yield self.sim.timeout(self.medium.free_at - self.sim.now)
            if backoff_slots:
                # Backoff counts *idle* slots: stations that deferred to
                # the same transmission separate here instead of waking
                # together at its end and colliding forever.
                yield self.sim.timeout(backoff_slots
                                       * self.cfg.slot_time_ns)
                if self.medium.busy:
                    continue  # someone with a shorter draw got in first
            sent = yield self.medium.attempt(frame_ns)
            if sent:
                break
            attempts += 1
            if attempts >= self.cfg.max_attempts:
                raise LanError(f"{self.name}: frame dropped after "
                               f"{attempts} collisions")
            self.backoffs += 1
            exponent = min(attempts, self.cfg.max_backoff_exponent)
            backoff_slots = self.medium.rng.randrange(2 ** exponent)
        self.frames_sent += 1
        self.medium.bytes_carried += payload_bytes
        target = self._peers.get(dst)
        if target is None:
            raise LanError(f"{self.name}: unknown station {dst!r}")
        payload = dict(frame or {}, src=self.name, size=payload_bytes)
        self.sim.call_in(frame_ns, lambda: target.rx_frames.put(payload))
        # One transceiver per station: hold until the frame has left.
        yield self.sim.timeout(frame_ns)


class LanHost:
    """A UNIX host on the Ethernet, running its protocol stack in-kernel."""

    def __init__(self, medium: EthernetMedium, name: str) -> None:
        self.medium = medium
        self.sim = medium.sim
        self.cfg = medium.cfg
        self.name = name
        self.station = EthernetStation(medium, name)
        self._ports: dict[str, Store] = {}
        self._partials: dict[tuple[str, int], dict] = {}
        self._msg_ids = iter(range(1, 1 << 60))
        self.sim.process(self._rx_pump(), name=f"{name}.eth-rx")

    def open_port(self, port: str) -> Store:
        if port in self._ports:
            raise LanError(f"port {port!r} already open on {self.name}")
        self._ports[port] = Store(self.sim)
        return self._ports[port]

    def send_message(self, dst_host: str, port: str, size: int,
                     data: Optional[bytes] = None):
        """Send one message: per-packet kernel stack + CSMA/CD frames."""
        fragments = slice_data(data, size, self.cfg.mtu_bytes)
        msg_id = next(self._msg_ids)
        for index, (frag_size, chunk) in enumerate(fragments):
            # Kernel stack on the sender (socket layer, copies, headers).
            yield self.sim.timeout(self.cfg.host_send_ns)
            yield from self.station.send_frame(
                dst_host, frag_size,
                frame={"port": port, "msg_id": msg_id, "frag": index,
                       "nfrags": len(fragments), "total": size,
                       "data": chunk})

    def receive(self, port: str):
        """Blocking read of the next complete message on ``port``."""
        store = self._ports.get(port)
        if store is None:
            raise LanError(f"port {port!r} not open on {self.name}")
        message = yield store.get()
        return message

    def _rx_pump(self):
        while True:
            frame = yield self.station.rx_frames.get()
            # Kernel stack on the receiver (interrupt, IP/TCP, wakeup).
            yield self.sim.timeout(self.cfg.host_receive_ns)
            if "msg_id" not in frame:
                continue  # raw station-level frame, not host traffic
            key = (frame["src"], frame["msg_id"])
            partial = self._partials.setdefault(
                key, {"got": 0, "chunks": {}, "total": frame["total"],
                      "nfrags": frame["nfrags"], "port": frame["port"],
                      "first_at": self.sim.now})
            partial["chunks"][frame["frag"]] = frame.get("data")
            partial["got"] += 1
            if partial["got"] < partial["nfrags"]:
                continue
            del self._partials[key]
            chunks = [partial["chunks"][i] for i in range(partial["nfrags"])]
            data = None if any(c is None for c in chunks) else b"".join(chunks)
            store = self._ports.get(partial["port"])
            if store is not None:
                store.put({"src": frame["src"], "size": partial["total"],
                           "data": data, "delivered_at": self.sim.now})


class EthernetLan:
    """Convenience wrapper: a medium plus named hosts, fully meshed."""

    def __init__(self, sim: Simulator, cfg: Optional[LanConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.cfg = cfg or LanConfig()
        self.medium = EthernetMedium(sim, self.cfg, rng)
        self.hosts: dict[str, LanHost] = {}

    def add_host(self, name: str) -> LanHost:
        if name in self.hosts:
            raise LanError(f"duplicate host {name!r}")
        host = LanHost(self.medium, name)
        for other in self.hosts.values():
            host.station.register_peer(other.station)
            other.station.register_peer(host.station)
        self.hosts[name] = host
        return host
