"""Nectarine: the Nectar programming interface (§6.3).

"Nectarine presents the programmer with a simple communication
abstraction: applications consist of tasks that communicate by
transferring messages between user-specified buffers.  Tasks are
processes on any CAB or node.  Messages can be located in any memory."

Nectarine hides much of the heterogeneity but not the performance
consequences of placement: a message in CAB memory is sent directly by
the CAB; a message in node memory first crosses the VME bus.  Copy
operations are minimised and DMA used whenever possible.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Union

from ..errors import NectarineError
from ..hardware.memory import MemoryBlock
from ..hardware.node import NodeHost
from ..kernel.mailbox import Mailbox, Message
from ..nodeiface.shared_memory import SharedMemoryInterface

if TYPE_CHECKING:  # pragma: no cover
    from ..system.builder import CabStack, NectarSystem

_task_ids = count(1)


class Buffer:
    """A user-specified message buffer in CAB or node memory (§6.3)."""

    def __init__(self, runtime: "NectarineRuntime", size: int,
                 location: Union["CabStack", NodeHost],
                 data: Optional[bytes] = None) -> None:
        if data is not None and len(data) != size:
            raise NectarineError(f"buffer size {size} != data length "
                                 f"{len(data)}")
        self.runtime = runtime
        self.size = size
        self.data = data
        self.location = location
        self.block: Optional[MemoryBlock] = None
        if self.in_cab_memory:
            # Real allocation in the CAB's data memory; placement has
            # performance consequences and capacity limits (§6.3).
            self.block = location.board.data_memory.alloc(max(size, 1))

    @property
    def in_cab_memory(self) -> bool:
        from ..system.builder import CabStack
        return isinstance(self.location, CabStack)

    def fill(self, data: bytes) -> None:
        if len(data) != self.size:
            raise NectarineError(
                f"fill of {len(data)} B into a {self.size} B buffer")
        self.data = data

    def release(self) -> None:
        if self.block is not None and not self.block.freed:
            self.block.region.free(self.block)
            self.block = None


class Task:
    """A Nectarine task: a process on a CAB or on a node (§6.3)."""

    def __init__(self, runtime: "NectarineRuntime", name: str,
                 location: Union["CabStack", NodeHost]) -> None:
        self.runtime = runtime
        self.name = name
        self.task_id = next(_task_ids)
        self.location = location
        self.cab = runtime._cab_of(location)
        self.mailbox: Mailbox = self.cab.create_mailbox(f"task:{name}")
        self._shm: Optional[SharedMemoryInterface] = None
        if not self.on_cab:
            self._shm = runtime._shm_for(self.cab)
        self._streams: dict[str, Any] = {}
        self.body = None

    @property
    def on_cab(self) -> bool:
        from ..system.builder import CabStack
        return isinstance(self.location, CabStack)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, body: Callable[["Task"], Generator]) -> None:
        """Run ``body(self)`` as this task's process."""
        generator = body(self)
        if self.on_cab:
            self.body = self.location.spawn(generator, name=self.name)
        else:
            self.body = self.location.run(generator, name=self.name)

    @property
    def done(self):
        if self.body is None:
            raise NectarineError(f"task {self.name} was never started")
        return getattr(self.body, "process", self.body)

    # ------------------------------------------------------------------
    # communication (generators, run inside the task body)
    # ------------------------------------------------------------------

    def send(self, dst: "Task", buffer: Union[Buffer, bytes, int],
             protocol: str = "datagram"):
        """Send a buffer to another task.

        The path is chosen from the buffer's placement (§6.3): CAB-memory
        buffers go straight to the transport; node-memory buffers cross
        VME through the shared-memory interface first.
        """
        data, size, in_cab = self._resolve(buffer)
        if protocol not in ("datagram", "stream"):
            raise NectarineError(f"unknown protocol {protocol!r}")
        if self.on_cab or in_cab:
            if protocol == "datagram":
                yield from self.cab.transport.datagram.send(
                    dst.cab.name, dst.mailbox.name, data=data, size=size,
                    meta={"from_task": self.name})
            else:
                connection = self._stream_to(dst)
                yield from connection.send(data=data, size=size)
        else:
            # Node-resident buffer: shared-memory interface (pipelined).
            yield from self._shm.send(dst.cab.name, dst.mailbox.name,
                                      data=data, size=size)

    def receive(self):
        """Receive the next message addressed to this task."""
        if self.on_cab:
            message = yield from self.location.kernel.wait(
                self.mailbox.get())
        else:
            message = yield from self._shm.receive(self.mailbox)
        return message

    def receive_match(self, predicate: Callable[[Message], bool]):
        """Out-of-order receive (mailbox predicate match)."""
        if self.on_cab:
            message = yield from self.location.kernel.wait(
                self.mailbox.get_match(predicate))
            return message
        node = self.location
        interval = node.cfg.poll_interval_ns
        while True:
            yield from node.vme_read(4)
            candidates = [m for m in self.mailbox.messages if predicate(m)]
            if candidates:
                self.mailbox.messages.remove(candidates[0])
                self.mailbox._consume(candidates[0])
                yield from node.vme_read(candidates[0].size)
                return candidates[0]
            yield self.runtime.system.sim.timeout(interval)

    def request(self, dst: "Task", buffer: Union[Buffer, bytes, int],
                timeout_ns: Optional[int] = None):
        """RPC to a server task (request-response protocol, §6.2.2)."""
        data, size, _in_cab = self._resolve(buffer)
        response = yield from self.cab.transport.rpc.request(
            dst.cab.name, dst.mailbox.name, data=data, size=size,
            timeout_ns=timeout_ns)
        return response

    def respond(self, request: Message,
                buffer: Union[Buffer, bytes, int]):
        """Answer an RPC request received by this (server) task."""
        data, size, _in_cab = self._resolve(buffer)
        yield from self.cab.transport.rpc.respond(request, data=data,
                                                  size=size)

    def _stream_to(self, dst: "Task"):
        key = dst.name
        if key not in self._streams:
            self._streams[key] = self.cab.transport.stream.connect(
                dst.cab.name, dst.mailbox.name)
        return self._streams[key]

    def _resolve(self, buffer: Union[Buffer, bytes, int]):
        if isinstance(buffer, Buffer):
            return buffer.data, buffer.size, buffer.in_cab_memory
        if isinstance(buffer, (bytes, bytearray)):
            return bytes(buffer), len(buffer), self.on_cab
        if isinstance(buffer, int):
            return None, buffer, self.on_cab
        raise NectarineError(f"cannot send {type(buffer).__name__}")


class NectarineRuntime:
    """Factory and registry for tasks and buffers on one system."""

    def __init__(self, system: "NectarSystem") -> None:
        self.system = system
        self.tasks: dict[str, Task] = {}
        self._shms: dict[str, SharedMemoryInterface] = {}

    def create_task(self, name: str,
                    location: Union["CabStack", NodeHost]) -> Task:
        if name in self.tasks:
            raise NectarineError(f"duplicate task name {name!r}")
        task = Task(self, name, location)
        self.tasks[name] = task
        return task

    def alloc_buffer(self, location: Union["CabStack", NodeHost],
                     size: int, data: Optional[bytes] = None) -> Buffer:
        return Buffer(self, size, location, data=data)

    def task(self, name: str) -> Task:
        try:
            return self.tasks[name]
        except KeyError:
            raise NectarineError(f"no task named {name!r}") from None

    # ------------------------------------------------------------------

    def _cab_of(self, location) -> "CabStack":
        from ..system.builder import CabStack
        if isinstance(location, CabStack):
            return location
        if isinstance(location, NodeHost):
            if location.cab is None:
                raise NectarineError(f"node {location.name} has no CAB")
            return self.system.cab(location.cab.name)
        raise NectarineError(
            f"tasks live on CABs or nodes, not {type(location).__name__}")

    def _shm_for(self, cab: "CabStack") -> SharedMemoryInterface:
        if cab.name not in self._shms:
            self._shms[cab.name] = SharedMemoryInterface(cab)
        return self._shms[cab.name]
