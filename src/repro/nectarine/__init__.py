"""Nectarine: tasks, buffers and messages — the user API (§6.3)."""

from .api import Buffer, NectarineRuntime, Task

__all__ = ["Buffer", "NectarineRuntime", "Task"]
