"""Application task graphs for automated mapping (§6.3 future work).

"Work has started on higher-level programming tools for Nectar.  We are
developing a high-level language that will be mapped onto a specific
Nectar configuration by a compiler.  Automating the mapping process will
not only simplify the programming task, but will also make programs
portable across multiple Nectar configurations."

This package is that mapping layer: an application is declared as a
graph of tasks (compute demand, optional machine-type constraint) and
channels (traffic weight); the algorithms in
:mod:`repro.mapper.placement` assign tasks to CABs, and
:mod:`repro.mapper.deploy` instantiates the result through Nectarine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..errors import NectarineError


@dataclass(frozen=True)
class TaskSpec:
    """One task in the application graph."""

    name: str
    #: CPU demand per activation (ns) — used for load balancing.
    compute_ns: int = 100_000
    #: Restrict placement to CABs whose node has this machine type
    #: (e.g. only a Warp can run the low-level vision task, §2.1).
    machine_type: Optional[str] = None
    #: CAB data-memory footprint (bytes).
    memory_bytes: int = 4096


@dataclass(frozen=True)
class ChannelSpec:
    """A directed communication edge between two tasks."""

    src: str
    dst: str
    #: Bytes per message on this channel.
    message_bytes: int = 256
    #: Relative message rate (messages per unit of application time).
    rate: float = 1.0

    @property
    def traffic(self) -> float:
        """Bytes per unit time — the weight mapping minimises."""
        return self.message_bytes * self.rate


class TaskGraph:
    """A validated application graph."""

    def __init__(self) -> None:
        self.tasks: dict[str, TaskSpec] = {}
        self.channels: list[ChannelSpec] = []

    def add_task(self, name: str, compute_ns: int = 100_000,
                 machine_type: Optional[str] = None,
                 memory_bytes: int = 4096) -> TaskSpec:
        if name in self.tasks:
            raise NectarineError(f"duplicate task {name!r} in graph")
        spec = TaskSpec(name, compute_ns, machine_type, memory_bytes)
        self.tasks[name] = spec
        return spec

    def add_channel(self, src: str, dst: str, message_bytes: int = 256,
                    rate: float = 1.0) -> ChannelSpec:
        for endpoint in (src, dst):
            if endpoint not in self.tasks:
                raise NectarineError(f"channel endpoint {endpoint!r} "
                                     f"is not a task")
        if src == dst:
            raise NectarineError(f"self-channel on {src!r}")
        spec = ChannelSpec(src, dst, message_bytes, rate)
        self.channels.append(spec)
        return spec

    def neighbours(self, name: str) -> Iterable[str]:
        for channel in self.channels:
            if channel.src == name:
                yield channel.dst
            elif channel.dst == name:
                yield channel.src

    @property
    def total_traffic(self) -> float:
        return sum(channel.traffic for channel in self.channels)

    def validate(self) -> None:
        if not self.tasks:
            raise NectarineError("empty task graph")

    def __len__(self) -> int:
        return len(self.tasks)
