"""Mapping algorithms: task graph → CAB assignment (§6.3 future work).

Three mappers of increasing quality, mirroring a compiler's options:

* :func:`round_robin_map` — the oblivious baseline.
* :func:`greedy_traffic_map` — co-locate the heaviest-talking task pairs
  (subject to load and constraints), then spread the rest.
* :func:`annealing_map` — local-search refinement of any starting
  placement under a combined communication + imbalance objective.

The communication objective charges each channel ``traffic × hop count``
where hops come from the real router (0 for co-located tasks, 1 within a
HUB cluster, more across clusters), so mapping quality directly reflects
the machine's topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..errors import NectarineError
from .graph import TaskGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..system.builder import CabStack, NectarSystem


@dataclass
class Placement:
    """An assignment of every task to a CAB."""

    assignment: dict[str, "CabStack"] = field(default_factory=dict)

    def cab_of(self, task: str) -> "CabStack":
        return self.assignment[task]

    def load_per_cab(self, graph: TaskGraph) -> dict[str, int]:
        loads: dict[str, int] = {}
        for task, cab in self.assignment.items():
            loads[cab.name] = loads.get(cab.name, 0) \
                + graph.tasks[task].compute_ns
        return loads

    def imbalance(self, graph: TaskGraph) -> float:
        """Max/mean load ratio (1.0 = perfectly balanced)."""
        loads = list(self.load_per_cab(graph).values())
        if not loads:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0


def _hops(system: "NectarSystem", src: "CabStack",
          dst: "CabStack") -> int:
    if src is dst:
        return 0
    return system.router.route(src.name, dst.name).hub_count


def communication_cost(graph: TaskGraph, placement: Placement,
                       system: "NectarSystem") -> float:
    """Sum over channels of traffic × hop count."""
    total = 0.0
    for channel in graph.channels:
        src = placement.cab_of(channel.src)
        dst = placement.cab_of(channel.dst)
        total += channel.traffic * _hops(system, src, dst)
    return total


def _eligible(task_name: str, graph: TaskGraph,
              cab: "CabStack") -> bool:
    constraint = graph.tasks[task_name].machine_type
    if constraint is None:
        return True
    return cab.node is not None and cab.node.machine_type == constraint


def _check_constraints(graph: TaskGraph, cabs: list["CabStack"]) -> None:
    for name, spec in graph.tasks.items():
        if spec.machine_type is None:
            continue
        if not any(_eligible(name, graph, cab) for cab in cabs):
            raise NectarineError(
                f"no CAB satisfies machine type {spec.machine_type!r} "
                f"for task {name!r}")


def round_robin_map(graph: TaskGraph,
                    cabs: list["CabStack"]) -> Placement:
    """Oblivious baseline: deal tasks onto CABs in declaration order."""
    graph.validate()
    _check_constraints(graph, cabs)
    placement = Placement()
    index = 0
    for name in graph.tasks:
        for probe in range(len(cabs)):
            cab = cabs[(index + probe) % len(cabs)]
            if _eligible(name, graph, cab):
                placement.assignment[name] = cab
                index += probe + 1
                break
    return placement


def greedy_traffic_map(graph: TaskGraph, cabs: list["CabStack"],
                       system: "NectarSystem",
                       load_cap_factor: float = 2.0) -> Placement:
    """Co-locate heavy channels first, respecting a per-CAB load cap."""
    graph.validate()
    _check_constraints(graph, cabs)
    total_load = sum(spec.compute_ns for spec in graph.tasks.values())
    cap = load_cap_factor * total_load / len(cabs)
    placement = Placement()
    loads: dict[str, float] = {cab.name: 0.0 for cab in cabs}

    def place(name: str, cab: "CabStack") -> None:
        placement.assignment[name] = cab
        loads[cab.name] += graph.tasks[name].compute_ns

    def pick_least_loaded(name: str) -> "CabStack":
        candidates = [cab for cab in cabs if _eligible(name, graph, cab)]
        return min(candidates, key=lambda cab: loads[cab.name])

    for channel in sorted(graph.channels, key=lambda c: -c.traffic):
        src_placed = channel.src in placement.assignment
        dst_placed = channel.dst in placement.assignment
        if src_placed and dst_placed:
            continue
        if not src_placed and not dst_placed:
            cab = pick_least_loaded(channel.src)
            if _eligible(channel.dst, graph, cab) and \
                    loads[cab.name] + graph.tasks[channel.src].compute_ns \
                    + graph.tasks[channel.dst].compute_ns <= cap:
                place(channel.src, cab)
                place(channel.dst, cab)
            else:
                place(channel.src, cab)
                place(channel.dst, pick_least_loaded(channel.dst))
            continue
        anchor, mover = (channel.src, channel.dst) if src_placed \
            else (channel.dst, channel.src)
        cab = placement.assignment[anchor]
        if _eligible(mover, graph, cab) and \
                loads[cab.name] + graph.tasks[mover].compute_ns <= cap:
            place(mover, cab)
        else:
            place(mover, pick_least_loaded(mover))
    for name in graph.tasks:
        if name not in placement.assignment:
            place(name, pick_least_loaded(name))
    return placement


def annealing_map(graph: TaskGraph, cabs: list["CabStack"],
                  system: "NectarSystem",
                  iterations: int = 500,
                  imbalance_weight: Optional[float] = None,
                  rng: Optional[random.Random] = None,
                  start: Optional[Placement] = None) -> Placement:
    """Simulated-annealing refinement of a placement."""
    graph.validate()
    _check_constraints(graph, cabs)
    rng = rng or random.Random(1989)
    placement = start or greedy_traffic_map(graph, cabs, system)
    placement = Placement(dict(placement.assignment))
    if imbalance_weight is None:
        imbalance_weight = max(graph.total_traffic, 1.0)

    def objective(candidate: Placement) -> float:
        return (communication_cost(graph, candidate, system)
                + imbalance_weight * (candidate.imbalance(graph) - 1.0))

    names = list(graph.tasks)
    current = objective(placement)
    temperature = max(current, 1.0)
    for step in range(iterations):
        temperature *= 0.99
        name = rng.choice(names)
        old_cab = placement.assignment[name]
        candidates = [cab for cab in cabs
                      if cab is not old_cab and _eligible(name, graph, cab)]
        if not candidates:
            continue
        new_cab = rng.choice(candidates)
        placement.assignment[name] = new_cab
        proposed = objective(placement)
        delta = proposed - current
        if delta <= 0 or rng.random() < pow(2.718, -delta / temperature):
            current = proposed
        else:
            placement.assignment[name] = old_cab
    return placement
