"""Instantiate a mapped task graph through Nectarine (§6.3).

:func:`deploy` turns a :class:`~repro.mapper.placement.Placement` into
live Nectarine tasks and returns handles; :func:`run_workload` drives the
graph with synthetic traffic matched to the channel specs and measures
the makespan — the metric the mapping benchmarks compare.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..nectarine.api import NectarineRuntime, Task
from .graph import TaskGraph
from .placement import Placement

if TYPE_CHECKING:  # pragma: no cover
    from ..system.builder import NectarSystem


def deploy(graph: TaskGraph, placement: Placement,
           runtime: NectarineRuntime) -> dict[str, Task]:
    """Create one Nectarine task per graph node on its assigned CAB."""
    tasks: dict[str, Task] = {}
    for name in graph.tasks:
        tasks[name] = runtime.create_task(name, placement.cab_of(name))
    return tasks


def run_workload(system: "NectarSystem", graph: TaskGraph,
                 placement: Placement, rounds: int = 5,
                 until: Optional[int] = None) -> int:
    """Execute the graph's traffic pattern; returns the makespan (ns).

    Each round, every task performs its compute and sends one message
    per outgoing channel; it then consumes every incoming message before
    the next round.  The run is deterministic, so mapping quality
    differences come purely from placement.
    """
    runtime = NectarineRuntime(system)
    tasks = deploy(graph, placement, runtime)
    incoming = {name: 0 for name in graph.tasks}
    for channel in graph.channels:
        incoming[channel.dst] += 1
    finish_times: dict[str, int] = {}

    def body_for(name: str):
        spec = graph.tasks[name]
        outgoing = [channel for channel in graph.channels
                    if channel.src == name]
        expected = incoming[name]

        def body(task: Task):
            kernel = task.cab.kernel
            for round_index in range(rounds):
                yield from kernel.compute(spec.compute_ns)
                for channel in outgoing:
                    yield from task.send(tasks[channel.dst],
                                         channel.message_bytes)
                for _ in range(expected):
                    yield from task.receive()
            finish_times[name] = system.sim.now
        return body

    for name, task in tasks.items():
        task.start(body_for(name))
    start = system.sim.now
    system.run(until=until)
    missing = [name for name in graph.tasks if name not in finish_times]
    if missing:
        raise RuntimeError(f"workload did not finish for {missing}")
    return max(finish_times.values()) - start
