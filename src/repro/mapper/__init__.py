"""Automated task mapping onto Nectar configurations (§6.3 future work)."""

from .deploy import deploy, run_workload
from .graph import ChannelSpec, TaskGraph, TaskSpec
from .placement import (Placement, annealing_map, communication_cost,
                        greedy_traffic_map, round_robin_map)

__all__ = [
    "ChannelSpec", "Placement", "TaskGraph", "TaskSpec", "annealing_map",
    "communication_cost", "deploy", "greedy_traffic_map",
    "round_robin_map", "run_workload",
]
