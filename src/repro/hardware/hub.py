"""The Nectar HUB: crossbar, ports, controller, and command semantics (§4).

A HUB establishes connections and passes messages between its input and
output fiber lines.  Simple commands execute in one controller cycle; CABs
compose them into datalink protocols (circuit switching, packet switching,
multicast — §4.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Optional

from ..config import FiberConfig, HubConfig
from ..errors import HubCommandError
from ..sim import Broadcast, Simulator
from .crossbar import Crossbar
from .frames import HubCommand, Reply
from .hub_collectives import HubCollectiveUnit
from .hub_commands import (CommandOp, is_supervisor, needs_controller,
                           wants_reply)
from .hub_controller import HubController
from .hub_port import HubPort

__all__ = ["Hub"]

if TYPE_CHECKING:  # pragma: no cover
    pass

HARDWARE_VERSION = "nectar-hub-prototype-1989"


class Hub:
    """A crossbar switch with a datalink protocol in hardware."""

    def __init__(self, sim: Simulator, name: str, cfg: HubConfig,
                 fiber_cfg: Optional[FiberConfig] = None,
                 tracer: Optional[Any] = None) -> None:
        self.sim = sim
        self.name = name
        self.cfg = cfg
        self.fiber_cfg = fiber_cfg or FiberConfig()
        self.tracer = tracer
        self.crossbar = Crossbar(cfg.num_ports)
        # Array-backed per-port wire state.  The ready bit and queue depth
        # are touched on every hop, so the hot sites (packet delivery,
        # output-register claim, controller test-opens) do index stores/
        # loads on these lists instead of attribute chases through the
        # port objects; :class:`HubPort` exposes property views for
        # compatibility and diagnostics.
        self.ready_bits: list[bool] = [True] * cfg.num_ports
        self.queue_depths: list[int] = [0] * cfg.num_ports
        self.max_queue_depths: list[int] = [0] * cfg.num_ports
        self.ports = [HubPort(self, index) for index in range(cfg.num_ports)]
        self.controller = HubController(self)
        #: In-network collective engine (fetch-add/barrier/reduce).
        self.collectives = HubCollectiveUnit(self)
        #: Lock table: output port -> origin CAB holding the lock.
        self.locks: dict[int, str] = {}
        #: Broadcast per output port, fired when the output frees.
        self.freed = [Broadcast(sim) for _ in range(cfg.num_ports)]
        self.counters: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def count(self, key: str, amount: int = 1) -> None:
        """Bump a counter (and trace it when tracing is actually on).

        This runs for every command, hop, and drop, so the disabled-tracing
        case must cost one attribute check here — not a ``Tracer.record``
        call that immediately returns (see the ``trace-disabled`` scenario
        in :mod:`repro.perfbench`).
        """
        self.counters[key] += amount
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.record(self.name, key)

    #: Event counters exported as sampled time series when a registry is
    #: attached (the rest of the defaultdict still appears in snapshots).
    OBSERVED_COUNTERS = ("commands_executed", "packets_forwarded", "closes",
                         "replies_sent", "framing_errors", "stray_packets",
                         "opens_abandoned", "collective.fetch_adds",
                         "collective.barrier_joins", "collective.reduce_joins",
                         "collective.releases", "collective.stale")

    def register_metrics(self, registry, sampler) -> None:
        """Register this HUB with the observability layer (§4.1).

        Per-HUB counter series plus every port's queue-depth/ready/
        utilization probes; the controller registers its own command,
        queue-depth, and watchdog series so Perfetto shows switching
        activity over time.
        """
        for key in self.OBSERVED_COUNTERS:
            sampler.add_probe(
                f"{self.name}.{key}",
                lambda key=key: float(self.counters.get(key, 0)),
                description=f"cumulative HUB counter {key!r}",
                unit="events")
        self.controller.register_metrics(registry, sampler)
        for port in self.ports:
            port.register_metrics(registry, sampler)

    def port(self, index: int) -> HubPort:
        if not 0 <= index < self.cfg.num_ports:
            raise HubCommandError(f"{self.name} has no port {index}")
        return self.ports[index]

    def close_output(self, out_port: int) -> Optional[int]:
        """Disconnect whatever feeds ``out_port`` and wake open waiters."""
        owner = self.crossbar.disconnect(out_port)
        if owner is not None:
            self.count("closes")
            self.notify_output_freed(out_port)
        return owner

    def notify_output_freed(self, out_port: int) -> None:
        self.freed[out_port].fire()
        self.controller.notify(out_port)

    def notify_ready_changed(self, port_index: int) -> None:
        """A port's ready bit rose; test-opens targeting it may proceed."""
        self.controller.notify(port_index)

    # ------------------------------------------------------------------
    # command execution
    # ------------------------------------------------------------------

    def execute_command(self, command: HubCommand, in_port: int,
                        reverse_path: list):
        """Execute one command arriving on ``in_port`` (a generator).

        Returns a result dict; sends a reply to the origin if the command
        asks for one.
        """
        if command.hub_id not in (self.name, "*"):
            raise HubCommandError(
                f"{self.name} asked to execute {command!r} for "
                f"{command.hub_id}")
        self.count("commands_executed")
        if needs_controller(command.op):
            result = yield self.controller.submit(command, in_port,
                                                  reverse_path)
        else:
            # "Localized" commands execute inside the I/O port in a cycle.
            yield self.sim.timeout(self.cfg.cycle_ns)
            result = self._execute_local(command, in_port)
        if wants_reply(command.op):
            self._reply(command, result, reverse_path)
        return result

    def _execute_local(self, command: HubCommand,
                       in_port: int) -> dict[str, Any]:
        op = command.op
        param = command.param
        if is_supervisor(op):
            return self._execute_supervisor(command, in_port)
        if op is CommandOp.CLOSE:
            owner = self.close_output(self._checked(param))
            return {"ok": True, "was_owned_by": owner}
        if op is CommandOp.CLOSE_INPUT:
            freed = self.crossbar.disconnect_input(self._checked(param))
            for out_port in freed:
                self.count("closes")
                self.notify_output_freed(out_port)
            return {"ok": True, "closed": freed}
        if op is CommandOp.STATUS_OUTPUT:
            return {"ok": True,
                    "owner": self.crossbar.owner_of(self._checked(param))}
        if op is CommandOp.STATUS_INPUT:
            outputs = self.crossbar.outputs_of(self._checked(param))
            return {"ok": True, "outputs": sorted(outputs)}
        if op is CommandOp.STATUS_READY:
            return {"ok": True,
                    "ready": self.ready_bits[self._checked(param)]}
        if op is CommandOp.STATUS_LOCK:
            return {"ok": True, "locked_by": self.locks.get(param)}
        if op is CommandOp.STATUS_TABLE:
            return {"ok": True, "table": self.crossbar.snapshot(),
                    "locks": dict(self.locks)}
        if op is CommandOp.SET_READY:
            self.ready_bits[self._checked(param)] = True
            self.ports[param].ready_changed.fire()
            self.notify_ready_changed(param)
            return {"ok": True}
        if op is CommandOp.CLEAR_READY:
            self.ready_bits[self._checked(param)] = False
            return {"ok": True}
        if op is CommandOp.NOP:
            return {"ok": True}
        if op is CommandOp.ECHO:
            return {"ok": True, "echo": param}
        raise HubCommandError(f"unhandled command {command!r}")

    def _execute_supervisor(self, command: HubCommand,
                            in_port: int) -> dict[str, Any]:
        op = command.op
        param = command.param
        if op is CommandOp.SV_RESET_HUB:
            self.crossbar.reset()
            self.locks.clear()
            self.controller.reset()
            self.collectives.reset()
            for port in self.ports:
                port.reset()
            for out_port in range(self.cfg.num_ports):
                self.notify_output_freed(out_port)
            return {"ok": True}
        if op is CommandOp.SV_RESET_PORT:
            self.ports[self._checked(param)].reset()
            self.notify_ready_changed(param)
            return {"ok": True}
        if op is CommandOp.SV_ENABLE_PORT:
            self.ports[self._checked(param)].enabled = True
            return {"ok": True}
        if op is CommandOp.SV_DISABLE_PORT:
            port = self.ports[self._checked(param)]
            port.enabled = False
            self.close_output(param)
            return {"ok": True}
        if op is CommandOp.SV_LOOPBACK_ON:
            self.ports[self._checked(param)].loopback = True
            return {"ok": True}
        if op is CommandOp.SV_LOOPBACK_OFF:
            self.ports[self._checked(param)].loopback = False
            return {"ok": True}
        if op is CommandOp.SV_READ_COUNTERS:
            return {"ok": True, "counters": dict(self.counters),
                    "controller_commands": self.controller.commands_executed}
        if op is CommandOp.SV_CLEAR_COUNTERS:
            self.counters.clear()
            return {"ok": True}
        if op is CommandOp.SV_SELFTEST:
            self.crossbar.check_invariants()
            return {"ok": True, "selftest": "pass"}
        if op is CommandOp.SV_READ_VERSION:
            return {"ok": True, "version": HARDWARE_VERSION}
        if op is CommandOp.SV_FREEZE:
            self.controller.frozen = True
            return {"ok": True}
        if op is CommandOp.SV_UNFREEZE:
            self.controller.frozen = False
            return {"ok": True}
        if op is CommandOp.SV_SET_TIMEOUT:
            self.controller.retry_timeout_cycles = max(0, param)
            return {"ok": True}
        if op is CommandOp.SV_READ_STATUS:
            return {"ok": True, "frozen": self.controller.frozen,
                    "enabled": [p.enabled for p in self.ports]}
        raise HubCommandError(f"unhandled supervisor command {command!r}")

    def _checked(self, param: int) -> int:
        if not 0 <= param < self.cfg.num_ports:
            raise HubCommandError(f"{self.name}: bad port parameter {param}")
        return param

    # ------------------------------------------------------------------
    # replies (§4.2.1: reverse-path, cycle-stealing, never blocked)
    # ------------------------------------------------------------------

    def _reply(self, command: HubCommand, result: dict[str, Any],
               reverse_path: list) -> None:
        info = {key: value for key, value in result.items() if key != "ok"}
        reply = Reply(seq=command.seq, ok=bool(result.get("ok")),
                      hub_id=self.name, info=info)
        reply.info["route"] = list(reverse_path)
        self.count("replies_sent")
        self.route_reply(reply)

    def route_reply(self, reply: Reply) -> None:
        """Move a reply one hop backwards along its recorded route."""
        route = reply.info.get("route")
        if not route:
            if "coll" in reply.info:
                # A reply to a HUB-originated upward collective join: the
                # route ends here, and the collective unit fans the
                # release down to everything parked locally.
                self.collectives.on_reply(reply)
                return
            raise HubCommandError(f"reply {reply.seq} has no route at "
                                  f"{self.name}")
        hub, in_port = route.pop()
        if hub is not self:
            raise HubCommandError(
                f"reply routed to {self.name} but expected {hub.name}")
        port = self.ports[in_port]
        if port.out_fiber is None:
            raise HubCommandError(
                f"{self.name}.p{in_port} is unwired; cannot return reply")
        # One crossbar transfer latency, then cycle-steal onto the fiber.
        self.sim.call_in(self.cfg.transfer_ns,
                         lambda: port.out_fiber.send_priority(reply))

    # ------------------------------------------------------------------

    def status_snapshot(self) -> dict[str, Any]:
        """Full status table, as the instrumentation board would dump it."""
        return {
            "name": self.name,
            "connections": self.crossbar.snapshot(),
            "locks": dict(self.locks),
            "ports": [port.status() for port in self.ports],
            "counters": dict(self.counters),
            "collectives": self.collectives.status(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Hub {self.name} ports={self.cfg.num_ports} "
                f"connections={self.crossbar.connection_count}>")
