"""CAB memory: regions, bandwidth accounting, allocation, protection (§5.2).

The prototype CAB's data memory sustains 66 MB/s across concurrent CPU,
fiber-DMA and VME-DMA streams.  :class:`BandwidthPool` models that shared
capacity: streams run at their nominal device rate unless the sum of
nominal demands exceeds the pool, in which case every stream is scaled
proportionally (a fair-share approximation of bus arbitration; exact
per-cycle interleaving is below the fidelity this model needs).

Protection follows §5.2: every 1 KB page of the CAB address space can be
assigned any subset of read/write/execute permissions, per protection
domain, with 32 domains and a dedicated domain for VME accesses.  Checks
are performed "in parallel with the operation so that no latency is added"
— hence :meth:`ProtectionUnit.check` costs no simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from ..config import CabConfig
from ..errors import AllocationError, ProtectionFault
from ..sim import Simulator, units

READ = 0x1
WRITE = 0x2
EXECUTE = 0x4
ALL_ACCESS = READ | WRITE | EXECUTE

#: Domain 0 is the CAB kernel; the highest domain is reserved for VME.
KERNEL_DOMAIN = 0

_stream_ids = count(1)


class BandwidthPool:
    """Shared memory bandwidth (bytes/ns) divided among active streams."""

    def __init__(self, sim: Simulator, capacity_bytes_per_ns: float,
                 name: str = "memory") -> None:
        if capacity_bytes_per_ns <= 0:
            raise ValueError("pool capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity_bytes_per_ns
        self._active: dict[int, float] = {}
        self.bytes_moved = 0

    @property
    def demand(self) -> float:
        return sum(self._active.values())

    def open_stream(self, nominal_rate: float) -> int:
        """Register a long-lived stream; returns a handle for closing."""
        handle = next(_stream_ids)
        self._active[handle] = nominal_rate
        return handle

    def close_stream(self, handle: int) -> None:
        self._active.pop(handle, None)

    def effective_rate(self, nominal_rate: float,
                       already_open: bool = False) -> float:
        """Rate a stream of ``nominal_rate`` achieves given current load."""
        demand = self.demand + (0.0 if already_open else nominal_rate)
        if demand <= self.capacity:
            return nominal_rate
        return nominal_rate * (self.capacity / demand)

    def transfer(self, num_bytes: int, nominal_rate: float):
        """Timed transfer of ``num_bytes`` (generator for processes).

        The rate is fixed at transfer start — a deliberate approximation
        (see module docstring).
        """
        if num_bytes <= 0:
            return
        rate = self.effective_rate(nominal_rate)
        handle = self.open_stream(nominal_rate)
        try:
            yield self.sim.timeout(units.transfer_time(num_bytes, rate))
            self.bytes_moved += num_bytes
        finally:
            self.close_stream(handle)


@dataclass
class MemoryBlock:
    """An allocated extent inside a region."""

    region: "MemoryRegion"
    offset: int
    size: int
    freed: bool = False

    @property
    def end(self) -> int:
        return self.offset + self.size


class MemoryRegion:
    """A contiguous memory region with a first-fit allocator.

    The CAB splits its on-board memory into a program region and a data
    region; DMA is supported for data memory only (§5.2).
    """

    def __init__(self, sim: Simulator, name: str, size: int,
                 pool: BandwidthPool, dma_capable: bool = True) -> None:
        if size <= 0:
            raise ValueError(f"region size must be positive, got {size}")
        self.sim = sim
        self.name = name
        self.size = size
        self.pool = pool
        self.dma_capable = dma_capable
        #: Sorted list of free extents as (offset, size).
        self._free: list[tuple[int, int]] = [(0, size)]
        self.allocated_bytes = 0
        self.peak_allocated = 0
        #: One-shot callbacks invoked when memory is returned (used by
        #: mailboxes waiting for buffer space).
        self._free_listeners: list = []

    def alloc(self, size: int) -> MemoryBlock:
        """First-fit allocation; raises :class:`AllocationError` if full."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive: {size}")
        for index, (offset, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    del self._free[index]
                else:
                    self._free[index] = (offset + size, extent - size)
                self.allocated_bytes += size
                self.peak_allocated = max(self.peak_allocated,
                                          self.allocated_bytes)
                return MemoryBlock(self, offset, size)
        raise AllocationError(
            f"{self.name}: cannot allocate {size} B "
            f"({self.size - self.allocated_bytes} B free, fragmented)")

    def free(self, block: MemoryBlock) -> None:
        """Return a block; coalesces adjacent free extents."""
        if block.region is not self:
            raise AllocationError("block belongs to a different region")
        if block.freed:
            raise AllocationError("double free")
        block.freed = True
        self.allocated_bytes -= block.size
        self._free.append((block.offset, block.size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for offset, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((offset, size))
        self._free = merged
        listeners, self._free_listeners = self._free_listeners, []
        for listener in listeners:
            listener()

    def notify_on_free(self, callback) -> None:
        """Invoke ``callback()`` once, the next time memory is freed."""
        self._free_listeners.append(callback)

    @property
    def free_bytes(self) -> int:
        return self.size - self.allocated_bytes

    def copy_time(self, num_bytes: int, nominal_rate: float):
        """Timed access through the bandwidth pool (generator)."""
        yield from self.pool.transfer(num_bytes, nominal_rate)


class ProtectionUnit:
    """Per-page, per-domain memory protection (§5.2)."""

    def __init__(self, cfg: CabConfig, address_space: int) -> None:
        self.page_bytes = cfg.page_bytes
        self.num_domains = cfg.protection_domains
        self.num_pages = (address_space + cfg.page_bytes - 1) // cfg.page_bytes
        #: tables[domain][page] -> permission bits.
        self._tables = [[0] * self.num_pages
                        for _ in range(self.num_domains)]
        # The kernel domain starts with full access everywhere.
        for page in range(self.num_pages):
            self._tables[KERNEL_DOMAIN][page] = ALL_ACCESS
        self.faults = 0

    @property
    def vme_domain(self) -> int:
        """Accesses from over the VME bus use a dedicated domain (§5.2)."""
        return self.num_domains - 1

    def _check_domain(self, domain: int) -> None:
        if not 0 <= domain < self.num_domains:
            raise ProtectionFault(f"no such protection domain {domain}")

    def grant(self, domain: int, offset: int, size: int, perms: int) -> None:
        """Set permission bits for the pages covering [offset, offset+size)."""
        self._check_domain(domain)
        for page in self._pages(offset, size):
            self._tables[domain][page] = perms

    def revoke(self, domain: int, offset: int, size: int) -> None:
        self.grant(domain, offset, size, 0)

    def permissions(self, domain: int, offset: int) -> int:
        self._check_domain(domain)
        page = offset // self.page_bytes
        if not 0 <= page < self.num_pages:
            raise ProtectionFault(f"address {offset:#x} outside memory")
        return self._tables[domain][page]

    def check(self, domain: int, offset: int, size: int, access: int) -> None:
        """Raise :class:`ProtectionFault` unless every page allows
        ``access``.  Costs no simulated time (checked in parallel, §5.2)."""
        self._check_domain(domain)
        for page in self._pages(offset, size):
            if self._tables[domain][page] & access != access:
                self.faults += 1
                raise ProtectionFault(
                    f"domain {domain} denied access {access:#x} to page "
                    f"{page} (perms {self._tables[domain][page]:#x})")

    def _pages(self, offset: int, size: int):
        if offset < 0 or size < 0:
            raise ProtectionFault(f"bad extent {offset:#x}+{size}")
        first = offset // self.page_bytes
        last = (offset + max(size, 1) - 1) // self.page_bytes
        if last >= self.num_pages:
            raise ProtectionFault(
                f"extent {offset:#x}+{size} outside memory")
        return range(first, last + 1)
