"""The HUB command set (§4.2).

The prototype hardware documents 38 user and 14 supervisor commands.  The
paper describes their *categories* — "connections, locks, status, and flow
control" for user commands; "system testing and reconfiguration" for
supervisor commands — and works through the connection commands in detail.
We implement every command whose semantics the paper specifies or implies,
collapsing pure encoding variants; the resulting set below covers all four
user categories and the supervisor category with 24 + 14 operations.

Commands that require serialisation (opens, locks) are executed by the
central controller at one command per 70 ns cycle; "localized" commands
(closes, ready-bit and status operations) execute inside the I/O port
(§4.1).
"""

from __future__ import annotations

from enum import Enum, auto


class CommandOp(Enum):
    """Operation codes for the 3-byte HUB commands."""

    # --- connections (controller-serialised) ---
    OPEN = auto()                   #: try once; silently drop on failure
    OPEN_REPLY = auto()             #: try once; reply with outcome
    OPEN_RETRY = auto()             #: retry until the output frees
    OPEN_RETRY_REPLY = auto()       #: retry, then reply ("open with retry and reply")
    TEST_OPEN = auto()              #: open only if downstream queue ready
    TEST_OPEN_REPLY = auto()        #: ditto, with reply
    TEST_OPEN_RETRY = auto()        #: "test open with retry" (§4.2.3)
    TEST_OPEN_RETRY_REPLY = auto()  #: ditto, with reply

    # --- connections (port-local) ---
    CLOSE = auto()        #: close the connection feeding output port <param>
    CLOSE_INPUT = auto()  #: close every connection fed by input port <param>
    CLOSE_ALL = auto()    #: travelling close: tear down behind the data

    # --- locks (controller-serialised) ---
    LOCK = auto()             #: reserve output port <param> for the origin
    LOCK_REPLY = auto()       #: ditto, with reply
    LOCK_RETRY_REPLY = auto() #: wait for the lock, then reply
    UNLOCK = auto()           #: release a held lock

    # --- status (port-local, always replied) ---
    STATUS_OUTPUT = auto()  #: who owns output <param>?
    STATUS_INPUT = auto()   #: which outputs does input <param> feed?
    STATUS_READY = auto()   #: ready bit of port <param>
    STATUS_LOCK = auto()    #: lock holder of output <param>
    STATUS_TABLE = auto()   #: full status-table snapshot

    # --- flow control (port-local) ---
    SET_READY = auto()    #: force the ready bit of port <param> on
    CLEAR_READY = auto()  #: force the ready bit of port <param> off

    # --- misc user ---
    NOP = auto()   #: consume a cycle (timing/diagnostics)
    ECHO = auto()  #: reply unconditionally (liveness probe)

    # --- supervisor: testing and reconfiguration (§4.2) ---
    SV_RESET_HUB = auto()        #: drop all connections, locks, retries
    SV_RESET_PORT = auto()       #: reset one port (queue, ready bit)
    SV_ENABLE_PORT = auto()      #: (re-)enable a port
    SV_DISABLE_PORT = auto()     #: take a port out of service
    SV_LOOPBACK_ON = auto()      #: port echoes its input to its output
    SV_LOOPBACK_OFF = auto()     #: back to normal forwarding
    SV_READ_COUNTERS = auto()    #: reply with event counters
    SV_CLEAR_COUNTERS = auto()   #: zero the event counters
    SV_SELFTEST = auto()         #: run built-in self test, reply outcome
    SV_READ_VERSION = auto()     #: reply hardware revision
    SV_FREEZE = auto()           #: stop accepting user commands
    SV_UNFREEZE = auto()         #: resume accepting user commands
    SV_SET_TIMEOUT = auto()      #: configure the retry-watchdog (param cycles)
    SV_READ_STATUS = auto()      #: supervisor status snapshot (incl. frozen)

    # --- supervisor: in-network collectives (extension; DESIGN.md §5) ---
    SV_FETCH_ADD = auto()   #: atomic fetch-and-add on HUB counter <param>
    SV_BARRIER = auto()     #: join barrier group <param>; multicast release
    SV_REDUCE = auto()      #: join reduction group <param>; combine values
    SV_COLL_RESET = auto()  #: clear group/counter <param>; fail parked joins


#: The in-network combining commands (``repro.collectives``).  Not part
#: of the paper's 14-command supervisor set: they are the HUB-offloaded
#: collectives extension, serialised through the central controller so
#: arrival counting and combining are atomic at one command per cycle.
COLLECTIVE_OPS = frozenset({
    CommandOp.SV_FETCH_ADD, CommandOp.SV_BARRIER, CommandOp.SV_REDUCE,
    CommandOp.SV_COLL_RESET,
})

#: Commands the central controller must serialise (§4.1).  The collective
#: commands ride the same pipeline: the controller cycle *is* the
#: combining serialisation point (cf. the Ultracomputer's combining
#: switches).
CONTROLLER_OPS = frozenset({
    CommandOp.OPEN, CommandOp.OPEN_REPLY, CommandOp.OPEN_RETRY,
    CommandOp.OPEN_RETRY_REPLY, CommandOp.TEST_OPEN,
    CommandOp.TEST_OPEN_REPLY, CommandOp.TEST_OPEN_RETRY,
    CommandOp.TEST_OPEN_RETRY_REPLY, CommandOp.LOCK, CommandOp.LOCK_REPLY,
    CommandOp.LOCK_RETRY_REPLY, CommandOp.UNLOCK,
}) | COLLECTIVE_OPS

#: Open-family commands (establish crossbar connections).
OPEN_OPS = frozenset({
    CommandOp.OPEN, CommandOp.OPEN_REPLY, CommandOp.OPEN_RETRY,
    CommandOp.OPEN_RETRY_REPLY, CommandOp.TEST_OPEN,
    CommandOp.TEST_OPEN_REPLY, CommandOp.TEST_OPEN_RETRY,
    CommandOp.TEST_OPEN_RETRY_REPLY,
})

#: Opens that must also wait for the downstream ready bit (§4.2.3).
TEST_OPS = frozenset({
    CommandOp.TEST_OPEN, CommandOp.TEST_OPEN_REPLY,
    CommandOp.TEST_OPEN_RETRY, CommandOp.TEST_OPEN_RETRY_REPLY,
})

#: Opens/locks that keep retrying instead of failing.
RETRY_OPS = frozenset({
    CommandOp.OPEN_RETRY, CommandOp.OPEN_RETRY_REPLY,
    CommandOp.TEST_OPEN_RETRY, CommandOp.TEST_OPEN_RETRY_REPLY,
    CommandOp.LOCK_RETRY_REPLY,
})

#: Commands that send a reply to the origin CAB.  The collective
#: commands are deliberately absent: every one of them *does* answer its
#: origin, but the reply is issued by the HUB's collective unit — often
#: cycles later, when the whole group has arrived — rather than by the
#: generic execute-then-reply path.
REPLY_OPS = frozenset({
    CommandOp.OPEN_REPLY, CommandOp.OPEN_RETRY_REPLY,
    CommandOp.TEST_OPEN_REPLY, CommandOp.TEST_OPEN_RETRY_REPLY,
    CommandOp.LOCK_REPLY, CommandOp.LOCK_RETRY_REPLY,
    CommandOp.STATUS_OUTPUT, CommandOp.STATUS_INPUT, CommandOp.STATUS_READY,
    CommandOp.STATUS_LOCK, CommandOp.STATUS_TABLE, CommandOp.ECHO,
    CommandOp.SV_READ_COUNTERS, CommandOp.SV_SELFTEST,
    CommandOp.SV_READ_VERSION, CommandOp.SV_READ_STATUS,
})

#: Supervisor commands.
SUPERVISOR_OPS = frozenset(op for op in CommandOp if op.name.startswith("SV_"))


def is_supervisor(op: CommandOp) -> bool:
    return op in SUPERVISOR_OPS


def is_collective(op: CommandOp) -> bool:
    return op in COLLECTIVE_OPS


def needs_controller(op: CommandOp) -> bool:
    return op in CONTROLLER_OPS


def is_open(op: CommandOp) -> bool:
    return op in OPEN_OPS


def is_test_open(op: CommandOp) -> bool:
    return op in TEST_OPS


def has_retry(op: CommandOp) -> bool:
    return op in RETRY_OPS


def wants_reply(op: CommandOp) -> bool:
    return op in REPLY_OPS
