"""The prototype's bill of materials (§4.1, §5.2, Figure 6).

The paper records the physical build in unusual detail; this module
keeps those numbers queryable so packaging claims (Figure 6, the §5.2
component budget) are reproducible facts rather than prose:

* HUB I/O board: 305 chips, ~110 W, 15×17 inches, 8 ports per board.
* HUB backplane: 92 chips for the 16×16 crossbar + 132 for the central
  controller (47 + 20 of those are hardware-debugging support), ~70 W.
* CAB: 15×17 inches, ~100 W, ~360 components: 25 % data memory + DMA
  ports, 15 % VME interface, 15 % CPU + program memory, 13 % I/O ports,
  the rest (~120 chips) DMA controller, registers, checksum, protection,
  clocks and timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BoardSpec:
    """One physical board in the prototype."""

    name: str
    width_inches: float
    height_inches: float
    power_watts: float
    chip_count: int
    breakdown: dict[str, int] = field(default_factory=dict)

    @property
    def area_sq_inches(self) -> float:
        return self.width_inches * self.height_inches

    def share(self, subsystem: str) -> float:
        """Fraction of the board's chips in ``subsystem``."""
        return self.breakdown[subsystem] / self.chip_count


#: §4.1: "Each I/O board in the prototype uses 305 chips and has a
#: typical power consumption of 110 watts; the boards are 15 x 17
#: inches."
HUB_IO_BOARD = BoardSpec(
    name="HUB I/O board",
    width_inches=15.0, height_inches=17.0,
    power_watts=110.0, chip_count=305,
    breakdown={"io_ports": 305},
)

#: §4.1: "The backplane uses 92 chips for the 16 x 16 crossbar and 132
#: chips for the central controller.  (47 chips in the crossbar and 20
#: chips in the controller are for hardware debugging.)"
HUB_BACKPLANE = BoardSpec(
    name="HUB backplane",
    width_inches=15.0, height_inches=17.0,
    power_watts=70.0, chip_count=224,
    breakdown={
        "crossbar": 92,
        "controller": 132,
    },
)

#: Debug-support chips inside the backplane counts above.
HUB_BACKPLANE_DEBUG_CHIPS = {"crossbar": 47, "controller": 20}

#: §5.2: "The CAB prototype is a 15 x 17 inch board, with a typical
#: power consumption of 100 watts.  Of the nearly 360 components ...
#: about 25% are for the data memory and DMA ports, 15% for the VME
#: interface, 15% for the CPU and program memory, and 13% for the I/O
#: ports.  The remaining 120 or so chips are divided among the DMA
#: controller, CAB registers, hardware checksum computation, memory
#: protection, and clocks and timers."
CAB_BOARD = BoardSpec(
    name="CAB",
    width_inches=15.0, height_inches=17.0,
    power_watts=100.0, chip_count=360,
    breakdown={
        "data_memory_and_dma_ports": 90,    # 25 %
        "vme_interface": 54,                # 15 %
        "cpu_and_program_memory": 54,       # 15 %
        "io_ports": 47,                     # 13 %
        "dma_controller_registers_checksum_protection_clocks": 115,
    },
)

#: Ports per HUB I/O board (two boards populate a 16-port HUB, Fig 6).
PORTS_PER_IO_BOARD = 8


def hub_bill_of_materials(num_ports: int = 16) -> dict[str, object]:
    """Boards, chips and power for one HUB of ``num_ports`` ports."""
    boards = -(-num_ports // PORTS_PER_IO_BOARD)
    chips = boards * HUB_IO_BOARD.chip_count + HUB_BACKPLANE.chip_count
    power = boards * HUB_IO_BOARD.power_watts + HUB_BACKPLANE.power_watts
    return {
        "io_boards": boards,
        "chips": chips,
        "power_watts": power,
        "debug_chips": sum(HUB_BACKPLANE_DEBUG_CHIPS.values()),
    }


def system_bill_of_materials(num_hubs: int, num_cabs: int) -> dict[str, object]:
    """Aggregate chips/power for a whole installation."""
    hub = hub_bill_of_materials()
    return {
        "hubs": num_hubs,
        "cabs": num_cabs,
        "chips": num_hubs * hub["chips"] + num_cabs * CAB_BOARD.chip_count,
        "power_watts": (num_hubs * hub["power_watts"]
                        + num_cabs * CAB_BOARD.power_watts),
    }
