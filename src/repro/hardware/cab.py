"""The CAB (communication accelerator board) hardware model (§5, Figure 8).

The board combines a 16 MHz RISC CPU, fast program and data memories with
a shared bandwidth budget, a DMA controller, a fiber interface (the same
circuit as a HUB I/O port), a VME interface to the node, page-level memory
protection with multiple domains, a hardware checksum unit, and hardware
timers.  Software (the CAB kernel, datalink and transport layers) runs on
top of this class via the hooks it exposes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from ..config import CabConfig, FiberConfig
from ..sim import Broadcast, Event, Resource, Simulator
from .checksum import ChecksumUnit
from .dma import DmaController
from .frames import Packet, Reply
from .memory import BandwidthPool, MemoryRegion, ProtectionUnit
from .timers import HardwareTimers
from .vme import VmeBus

__all__ = ["CabCpu", "CabBoard"]

if TYPE_CHECKING:  # pragma: no cover
    from .fiber import Fiber
    from .hub_port import HubPort


class CabCpu:
    """The CAB's RISC CPU: a serially shared execution resource.

    Interrupts preempt thread-level work: thread computation is charged
    in small quanta, and interrupt handlers jump the wait queue, so an
    interrupt begins within one quantum of arriving — the behaviour the
    upcall deadline of §6.2.1 depends on.  Handlers skip the thread-
    switch cost (the SPARC reserves a register window for traps) but pay
    a small dispatch overhead.
    """

    #: Preemption granularity for thread-level computation.
    QUANTUM_NS = 10_000

    def __init__(self, sim: Simulator, cfg: CabConfig, name: str) -> None:
        self.sim = sim
        self.cfg = cfg
        self.name = name
        self._resource = Resource(sim, capacity=1)
        self.busy_ns = 0
        self.interrupt_count = 0

    def execute(self, cost_ns: int):
        """Charge ``cost_ns`` of thread-level CPU time (generator).

        Work is consumed in quanta so interrupt-context work can slot in
        between them (cooperative model of preemption).
        """
        remaining = int(cost_ns)
        resource = self._resource
        sim = self.sim
        quantum_ns = self.QUANTUM_NS
        while remaining > 0:
            quantum = remaining if remaining < quantum_ns else quantum_ns
            yield resource.acquire()
            try:
                yield sim.timeout(quantum)
                self.busy_ns += quantum
            finally:
                resource.release()
            remaining -= quantum

    def execute_interrupt(self, cost_ns: int):
        """Run an interrupt handler: preempts threads at the next
        quantum boundary; charges dispatch overhead plus the body."""
        self.interrupt_count += 1
        total = self.cfg.interrupt_overhead_ns + int(cost_ns)
        if total <= 0:
            return
        grant = self._resource.acquire(priority=True)
        yield grant
        try:
            yield self.sim.timeout(total)
            self.busy_ns += total
        finally:
            self._resource.release()

    def stall(self, duration_ns: int):
        """Seize the CPU exclusively for ``duration_ns`` (generator).

        Fault-injection hook (``repro.faults``): models a wedged or
        crashed CAB processor.  The stall jumps the wait queue like an
        interrupt, then holds the CPU so neither threads nor further
        interrupts make progress until it lifts — input queues back up
        and the peers' recovery timers fire, §4.2.1/§6.2.2 style.
        """
        duration = int(duration_ns)
        if duration <= 0:
            return
        grant = self._resource.acquire(priority=True)
        yield grant
        try:
            yield self.sim.timeout(duration)
            self.busy_ns += duration
        finally:
            self._resource.release()

    def utilization(self, since_ns: int = 0) -> float:
        elapsed = self.sim.now - since_ns
        if elapsed <= 0:
            return 0.0
        return min(self.busy_ns / elapsed, 1.0)


class CabBoard:
    """One CAB: the interface between a node and the Nectar-net."""

    def __init__(self, sim: Simulator, name: str, cfg: CabConfig,
                 fiber_cfg: Optional[FiberConfig] = None) -> None:
        self.sim = sim
        self.name = name
        self.cfg = cfg
        self.fiber_cfg = fiber_cfg or FiberConfig()
        self.cpu = CabCpu(sim, cfg, f"{name}.cpu")
        self.memory_pool = BandwidthPool(sim, cfg.memory_bytes_per_ns,
                                         name=f"{name}.membw")
        self.data_memory = MemoryRegion(sim, f"{name}.data",
                                        cfg.data_memory_bytes,
                                        self.memory_pool, dma_capable=True)
        self.program_memory = MemoryRegion(sim, f"{name}.prog",
                                           cfg.program_memory_bytes,
                                           self.memory_pool,
                                           dma_capable=False)
        self.protection = ProtectionUnit(
            cfg, cfg.data_memory_bytes + cfg.program_memory_bytes)
        self.dma = DmaController(self)
        self.checksum = ChecksumUnit(cfg)
        self.timers = HardwareTimers(sim)
        self.vme = VmeBus(sim, cfg, f"{name}.vme")
        # --- fiber interface (same circuit as a HUB I/O port, §5.2) ---
        self.out_fiber: Optional["Fiber"] = None
        self.hub_port: Optional["HubPort"] = None
        self.first_hop_ready = True
        self.ready_changed = Broadcast(sim)
        # --- software hooks ---
        self._rx_handler: Optional[Callable[..., Any]] = None
        self._rx_backlog: list[tuple[Packet, int, int, int]] = []
        self._reply_waiters: dict[int, Event] = {}
        self.counters: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def register_metrics(self, registry, sampler) -> None:
        """Register the board's devices with the observability layer.

        Covers the outgoing fiber, the four DMA channels, the VME bus,
        and the CPU's cumulative busy time (sampled, so the delta per
        interval is the CPU's utilization series).
        """
        self.dma.register_metrics(registry, sampler)
        self.vme.register_metrics(registry, sampler)
        if self.out_fiber is not None:
            self.out_fiber.register_metrics(registry, sampler,
                                            prefix=f"{self.name}.fiber")
        sampler.add_utilization_probe(
            f"{self.name}.cpu.util", lambda: self.cpu.busy_ns, 1.0,
            description="CAB CPU busy fraction")

    # ------------------------------------------------------------------
    # fiber endpoint protocol (called by the attached hub port's fiber)
    # ------------------------------------------------------------------

    @property
    def fiber_rate_bytes_per_ns(self) -> float:
        return self.fiber_cfg.bytes_per_ns

    def deliver(self, item: Union[Packet, Reply], wire_size: int) -> None:
        """Head of ``item`` arrived at the CAB's fiber input queue."""
        if isinstance(item, Reply):
            self._deliver_reply(item)
            return
        head_time = self.sim.now
        tail_time = head_time + self._tail_delay(wire_size)
        self.counters["packets_received"] += 1
        if self._rx_handler is None:
            self._rx_backlog.append((item, wire_size, head_time, tail_time))
            return
        self._dispatch_rx(item, wire_size, head_time, tail_time)

    def _tail_delay(self, wire_size: int) -> int:
        from ..sim import units
        return units.transfer_time(wire_size, self.fiber_rate_bytes_per_ns)

    def notify_ready(self) -> None:
        """The hub's input queue (our first hop) drained."""
        self.first_hop_ready = True
        self.ready_changed.fire()

    def signal_input_drained(self) -> None:
        """Our input queue drained: raise the hub port's ready bit.

        Called by the datalink once the inbound DMA has emptied the queue
        (or the packet was dropped)."""
        if self.hub_port is not None:
            self.sim.call_in(self.fiber_cfg.propagation_ns,
                             self.hub_port.notify_ready)

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------

    def transmit(self, packet: Packet) -> Event:
        """Queue a packet on the outgoing fiber.

        Returns the fiber's completion event (tail has left the board).
        Payload packets clear the first-hop ready flag — the start of
        packet at our output register (§4.2.3).
        """
        if self.out_fiber is None:
            raise RuntimeError(f"{self.name} is not wired to a HUB")
        if packet.has_payload:
            self.first_hop_ready = False
        self.counters["packets_sent"] += 1
        return self.out_fiber.send(packet)

    # ------------------------------------------------------------------
    # receive path plumbing
    # ------------------------------------------------------------------

    def on_receive(self, handler: Callable[..., Any]) -> None:
        """Register the datalink's receive-interrupt handler.

        ``handler(packet, wire_size, head_time, tail_time)`` must return a
        generator; it is spawned as an interrupt-context process.  Packets
        that arrived before registration are replayed.
        """
        self._rx_handler = handler
        backlog, self._rx_backlog = self._rx_backlog, []
        for packet, size, head, tail in backlog:
            self._dispatch_rx(packet, size, head, tail)

    def _dispatch_rx(self, packet: Packet, wire_size: int,
                     head_time: int, tail_time: int) -> None:
        self.sim.process(
            self._rx_handler(packet, wire_size, head_time, tail_time),
            name=f"{self.name}.rx#{packet.packet_id}")

    # ------------------------------------------------------------------
    # reply plumbing (datalink waits on command replies)
    # ------------------------------------------------------------------

    def expect_reply(self, seq: int) -> Event:
        """Event that fires with the :class:`Reply` for command ``seq``."""
        if seq in self._reply_waiters:
            raise RuntimeError(f"{self.name}: reply {seq} already expected")
        event = self.sim.event()
        self._reply_waiters[seq] = event
        return event

    def cancel_reply(self, seq: int) -> None:
        self._reply_waiters.pop(seq, None)

    def _deliver_reply(self, reply: Reply) -> None:
        waiter = self._reply_waiters.pop(reply.seq, None)
        if waiter is None:
            self.counters["stray_replies"] += 1
            return
        self.counters["replies_received"] += 1
        waiter.succeed(reply)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CabBoard {self.name}>"
