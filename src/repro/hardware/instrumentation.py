"""The HUB instrumentation board (§4.1, Figure 6).

"An additional instrumentation board can be plugged into the backplane
...; it can monitor and record events related to the crossbar and its
controller."

:class:`InstrumentationBoard` taps a HUB the way the hardware card taps
backplane signals: it interposes probes on the crossbar, the controller
and the port output fibers, and accumulates

* connection setup latencies (controller submit → crossbar connect),
* connection hold times (connect → disconnect, per output port),
* per-port forwarded bytes and packets (link utilisation),
* controller occupancy (commands executed, refused opens).

Probes add zero simulated time — monitoring hardware watches, it does
not slow the datapath.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Optional

from ..stats.recorders import LatencyRecorder

if TYPE_CHECKING:  # pragma: no cover
    from .hub import Hub


class InstrumentationBoard:
    """A monitoring card plugged into one HUB's backplane."""

    def __init__(self, hub: "Hub") -> None:
        self.hub = hub
        self.sim = hub.sim
        self.attached_at = self.sim.now
        self.setup_latency = LatencyRecorder("connection-setup")
        self.hold_time = LatencyRecorder("connection-hold")
        self.port_bytes: dict[int, int] = defaultdict(int)
        self.port_packets: dict[int, int] = defaultdict(int)
        self.connects_seen = 0
        self.disconnects_seen = 0
        self.commands_seen = 0
        self._open_since: dict[int, int] = {}
        self._submit_times: dict[int, int] = {}
        self._install_probes()

    # ------------------------------------------------------------------
    # probe installation (signal taps)
    # ------------------------------------------------------------------

    def _install_probes(self) -> None:
        crossbar = self.hub.crossbar
        controller = self.hub.controller

        original_connect = crossbar.connect

        def probed_connect(in_port: int, out_port: int) -> bool:
            ok = original_connect(in_port, out_port)
            if ok:
                self.connects_seen += 1
                self._open_since.setdefault(out_port, self.sim.now)
            return ok
        crossbar.connect = probed_connect

        original_disconnect = crossbar.disconnect

        def probed_disconnect(out_port: int) -> Optional[int]:
            owner = original_disconnect(out_port)
            if owner is not None:
                self.disconnects_seen += 1
                opened = self._open_since.pop(out_port, None)
                if opened is not None:
                    self.hold_time.add(self.sim.now - opened)
            return owner
        crossbar.disconnect = probed_disconnect

        original_submit = controller.submit

        def probed_submit(command, in_port, reverse_path):
            self._submit_times[command.seq] = self.sim.now
            done = original_submit(command, in_port, reverse_path)

            def on_done(event):
                submitted = self._submit_times.pop(command.seq, None)
                if submitted is not None and event._ok \
                        and isinstance(event._value, dict) \
                        and event._value.get("ok"):
                    self.setup_latency.add(self.sim.now - submitted)
            done.add_callback(on_done)
            return done
        controller.submit = probed_submit

        original_dispatch = controller._dispatch

        def probed_dispatch(job):
            self.commands_seen += 1
            original_dispatch(job)
        controller._dispatch = probed_dispatch

        for port in self.hub.ports:
            if port.out_fiber is None:
                continue
            self._tap_fiber(port)

    def _tap_fiber(self, port) -> None:
        fiber = port.out_fiber
        original_send = fiber.send

        def probed_send(item, wire_size=None):
            size = wire_size if wire_size is not None \
                else fiber._size_of(item, None)
            self.port_bytes[port.index] += size
            self.port_packets[port.index] += 1
            return original_send(item, size)
        fiber.send = probed_send

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------

    def port_utilization(self, port_index: int) -> float:
        """Fraction of the observation window the port's output fiber
        spent transmitting."""
        elapsed = self.sim.now - self.attached_at
        if elapsed <= 0:
            return 0.0
        byte_time = self.hub.fiber_cfg.ns_per_byte
        busy = self.port_bytes.get(port_index, 0) * byte_time
        return min(busy / elapsed, 1.0)

    def busiest_ports(self, count: int = 4) -> list[tuple[int, int]]:
        ordered = sorted(self.port_bytes.items(),
                         key=lambda item: -item[1])
        return ordered[:count]

    def report(self) -> dict[str, Any]:
        """A snapshot of everything the board has recorded."""
        return {
            "hub": self.hub.name,
            "window_ns": self.sim.now - self.attached_at,
            "connects": self.connects_seen,
            "disconnects": self.disconnects_seen,
            "commands": self.commands_seen,
            "setup_latency": self.setup_latency.summary(),
            "hold_time": self.hold_time.summary(),
            "port_bytes": dict(self.port_bytes),
            "utilization": {index: self.port_utilization(index)
                            for index in self.port_bytes},
        }
