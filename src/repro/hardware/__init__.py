"""Hardware models: fibers, HUBs, CABs, memories, buses (§§3–5)."""

from .bom import (CAB_BOARD, HUB_BACKPLANE, HUB_IO_BOARD, BoardSpec,
                  hub_bill_of_materials, system_bill_of_materials)
from .cab import CabBoard, CabCpu
from .checksum import ChecksumUnit, raw_checksum
from .crossbar import Crossbar
from .dma import DmaController
from .fiber import DuplexFiber, Fiber
from .frames import (COLLECTIVE_ARG_BYTES, HubCommand, Packet, Payload,
                     Reply, fletcher16)
from .hub import HARDWARE_VERSION, Hub
from .hub_collectives import REDUCE_OPS, HubCollectiveUnit
from .hub_commands import (CommandOp, has_retry, is_collective, is_open,
                           is_supervisor, is_test_open, needs_controller,
                           wants_reply)
from .hub_controller import HubController
from .hub_port import HubPort
from .instrumentation import InstrumentationBoard
from .memory import (ALL_ACCESS, EXECUTE, KERNEL_DOMAIN, READ, WRITE,
                     BandwidthPool, MemoryBlock, MemoryRegion,
                     ProtectionUnit)
from .node import NodeHost
from .timers import HardwareTimers, TimerHandle
from .vme import VmeBus
from .wiring import wire_cab_to_hub, wire_hub_to_hub

__all__ = [
    "ALL_ACCESS", "CAB_BOARD", "COLLECTIVE_ARG_BYTES", "EXECUTE",
    "HUB_BACKPLANE", "HUB_IO_BOARD",
    "KERNEL_DOMAIN", "READ", "REDUCE_OPS", "WRITE", "BoardSpec",
    "BandwidthPool", "CabBoard", "CabCpu", "ChecksumUnit", "CommandOp",
    "Crossbar", "DmaController", "DuplexFiber", "Fiber", "HARDWARE_VERSION",
    "HardwareTimers", "Hub", "HubCollectiveUnit", "HubCommand",
    "HubController", "HubPort",
    "InstrumentationBoard",
    "MemoryBlock", "MemoryRegion", "NodeHost", "Packet", "Payload",
    "ProtectionUnit",
    "Reply", "TimerHandle", "VmeBus", "fletcher16", "has_retry",
    "is_collective", "is_open",
    "is_supervisor", "is_test_open", "needs_controller", "raw_checksum",
    "wants_reply", "wire_cab_to_hub", "wire_hub_to_hub",
    "hub_bill_of_materials", "system_bill_of_materials",
]
