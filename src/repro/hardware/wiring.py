"""Fiber wiring between CABs and HUBs and between HUBs (§3.1).

Every CAB connects to a HUB via a pair of fiber lines carrying signals in
opposite directions; HUB-HUB links use identical I/O ports, so "there is
no a priori restriction on how many links can be used for inter-HUB
connections".
"""

from __future__ import annotations

import random
from typing import Optional

from ..config import FiberConfig
from ..errors import TopologyError
from ..sim import Simulator
from .cab import CabBoard
from .fiber import Fiber
from .hub import Hub


def wire_cab_to_hub(sim: Simulator, cab: CabBoard, hub: Hub, port_index: int,
                    fiber_cfg: Optional[FiberConfig] = None,
                    rng: Optional[random.Random] = None) -> None:
    """Attach ``cab`` to ``hub`` at ``port_index`` with a fiber pair."""
    cfg = fiber_cfg or hub.fiber_cfg
    port = hub.port(port_index)
    if port.peer is not None:
        raise TopologyError(f"{hub.name}.p{port_index} already wired")
    if cab.out_fiber is not None:
        raise TopologyError(f"{cab.name} already wired to a HUB")
    uplink = Fiber(sim, cfg, f"{cab.name}->{hub.name}.p{port_index}", rng)
    downlink = Fiber(sim, cfg, f"{hub.name}.p{port_index}->{cab.name}", rng)
    uplink.connect(port)
    downlink.connect(cab)
    cab.out_fiber = uplink
    cab.hub_port = port
    port.out_fiber = downlink
    port.peer = cab


def wire_hub_to_hub(sim: Simulator, hub_a: Hub, port_a: int,
                    hub_b: Hub, port_b: int,
                    fiber_cfg: Optional[FiberConfig] = None,
                    rng: Optional[random.Random] = None) -> None:
    """Connect two HUBs with a fiber pair (one port on each side)."""
    if hub_a is hub_b:
        raise TopologyError(f"cannot wire {hub_a.name} to itself")
    cfg = fiber_cfg or hub_a.fiber_cfg
    pa = hub_a.port(port_a)
    pb = hub_b.port(port_b)
    if pa.peer is not None:
        raise TopologyError(f"{hub_a.name}.p{port_a} already wired")
    if pb.peer is not None:
        raise TopologyError(f"{hub_b.name}.p{port_b} already wired")
    a_to_b = Fiber(sim, cfg, f"{hub_a.name}.p{port_a}->{hub_b.name}.p{port_b}",
                   rng)
    b_to_a = Fiber(sim, cfg, f"{hub_b.name}.p{port_b}->{hub_a.name}.p{port_a}",
                   rng)
    a_to_b.connect(pb)
    b_to_a.connect(pa)
    pa.out_fiber = a_to_b
    pa.peer = pb
    pb.out_fiber = b_to_a
    pb.peer = pa
