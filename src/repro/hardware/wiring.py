"""Fiber wiring between CABs and HUBs and between HUBs (§3.1).

Every CAB connects to a HUB via a pair of fiber lines carrying signals in
opposite directions; HUB-HUB links use identical I/O ports, so "there is
no a priori restriction on how many links can be used for inter-HUB
connections".
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..config import FiberConfig
from ..errors import TopologyError
from ..sim import Simulator
from .cab import CabBoard
from .fiber import Fiber
from .hub import Hub

#: Maps a fiber name to its fault-injection RNG; system builders pass
#: :meth:`~repro.config.NectarConfig.rng_stream` so every link gets an
#: independent, seed-derived stream.
RngFactory = Callable[[str], random.Random]


def _link_rng(name: str, rng: Optional[random.Random],
              rng_factory: Optional[RngFactory]) -> Optional[random.Random]:
    if rng_factory is not None:
        return rng_factory(name)
    return rng


def wire_cab_to_hub(sim: Simulator, cab: CabBoard, hub: Hub, port_index: int,
                    fiber_cfg: Optional[FiberConfig] = None,
                    rng: Optional[random.Random] = None,
                    rng_factory: Optional[RngFactory] = None) -> None:
    """Attach ``cab`` to ``hub`` at ``port_index`` with a fiber pair."""
    cfg = fiber_cfg or hub.fiber_cfg
    port = hub.port(port_index)
    if port.peer is not None:
        raise TopologyError(f"{hub.name}.p{port_index} already wired")
    if cab.out_fiber is not None:
        raise TopologyError(f"{cab.name} already wired to a HUB")
    up_name = f"{cab.name}->{hub.name}.p{port_index}"
    down_name = f"{hub.name}.p{port_index}->{cab.name}"
    uplink = Fiber(sim, cfg, up_name, _link_rng(up_name, rng, rng_factory))
    downlink = Fiber(sim, cfg, down_name,
                     _link_rng(down_name, rng, rng_factory))
    uplink.connect(port)
    downlink.connect(cab)
    cab.out_fiber = uplink
    cab.hub_port = port
    port.out_fiber = downlink
    port.peer = cab


def wire_hub_to_hub(sim: Simulator, hub_a: Hub, port_a: int,
                    hub_b: Hub, port_b: int,
                    fiber_cfg: Optional[FiberConfig] = None,
                    rng: Optional[random.Random] = None,
                    rng_factory: Optional[RngFactory] = None) -> None:
    """Connect two HUBs with a fiber pair (one port on each side)."""
    if hub_a is hub_b:
        raise TopologyError(f"cannot wire {hub_a.name} to itself")
    cfg = fiber_cfg or hub_a.fiber_cfg
    pa = hub_a.port(port_a)
    pb = hub_b.port(port_b)
    if pa.peer is not None:
        raise TopologyError(f"{hub_a.name}.p{port_a} already wired")
    if pb.peer is not None:
        raise TopologyError(f"{hub_b.name}.p{port_b} already wired")
    ab_name = f"{hub_a.name}.p{port_a}->{hub_b.name}.p{port_b}"
    ba_name = f"{hub_b.name}.p{port_b}->{hub_a.name}.p{port_a}"
    a_to_b = Fiber(sim, cfg, ab_name, _link_rng(ab_name, rng, rng_factory))
    b_to_a = Fiber(sim, cfg, ba_name, _link_rng(ba_name, rng, rng_factory))
    a_to_b.connect(pb)
    b_to_a.connect(pa)
    pa.out_fiber = a_to_b
    pa.peer = pb
    pb.out_fiber = b_to_a
    pb.peer = pa
