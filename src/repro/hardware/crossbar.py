"""The HUB crossbar switch (§4.1, Figure 5).

An input queue can feed multiple output registers (multicast fan-out), but
each output register has at most one input connected at a time.  The
status table tracks live connections; the central controller is the only
writer, CABs may interrogate it.
"""

from __future__ import annotations

from typing import Optional


class Crossbar:
    """An N×N crossbar with multicast fan-out and a status table."""

    def __init__(self, num_ports: int) -> None:
        if num_ports < 2:
            raise ValueError(f"crossbar needs >= 2 ports, got {num_ports}")
        self.num_ports = num_ports
        #: output index -> input index currently connected (None if free).
        self._out_owner: list[Optional[int]] = [None] * num_ports
        #: input index -> set of output indices it feeds.
        self._in_targets: list[set[int]] = [set() for _ in range(num_ports)]
        self.connects_made = 0
        self.connects_refused = 0

    def _check_port(self, index: int) -> None:
        if not 0 <= index < self.num_ports:
            raise IndexError(f"port {index} outside 0..{self.num_ports - 1}")

    # ------------------------------------------------------------------

    def connect(self, in_port: int, out_port: int) -> bool:
        """Attempt to connect ``in_port`` → ``out_port``.

        Returns False (and changes nothing) if the output register is
        already driven by another input.  Connecting an input to an output
        it already feeds is an idempotent success.
        """
        self._check_port(in_port)
        self._check_port(out_port)
        owner = self._out_owner[out_port]
        if owner is not None and owner != in_port:
            self.connects_refused += 1
            return False
        self._out_owner[out_port] = in_port
        self._in_targets[in_port].add(out_port)
        self.connects_made += 1
        return True

    def disconnect(self, out_port: int) -> Optional[int]:
        """Free an output register; returns the input that was driving it."""
        self._check_port(out_port)
        owner = self._out_owner[out_port]
        if owner is None:
            return None
        self._out_owner[out_port] = None
        self._in_targets[owner].discard(out_port)
        return owner

    def disconnect_input(self, in_port: int) -> list[int]:
        """Free every output fed by ``in_port``; returns those outputs."""
        self._check_port(in_port)
        outputs = sorted(self._in_targets[in_port])
        for out_port in outputs:
            self._out_owner[out_port] = None
        self._in_targets[in_port].clear()
        return outputs

    def reset(self) -> None:
        """Supervisor reset: drop every connection."""
        self._out_owner = [None] * self.num_ports
        for targets in self._in_targets:
            targets.clear()

    # ------------------------------------------------------------------
    # status table
    # ------------------------------------------------------------------

    def owner_of(self, out_port: int) -> Optional[int]:
        self._check_port(out_port)
        return self._out_owner[out_port]

    def outputs_of(self, in_port: int) -> frozenset[int]:
        self._check_port(in_port)
        return frozenset(self._in_targets[in_port])

    def output_busy(self, out_port: int) -> bool:
        return self.owner_of(out_port) is not None

    @property
    def connection_count(self) -> int:
        return sum(1 for owner in self._out_owner if owner is not None)

    def snapshot(self) -> dict[int, Optional[int]]:
        """Status-table dump: output index -> driving input (or None)."""
        return {out: owner for out, owner in enumerate(self._out_owner)}

    def check_invariants(self) -> None:
        """Internal consistency check (used by property tests)."""
        for out_port, owner in enumerate(self._out_owner):
            if owner is not None:
                assert out_port in self._in_targets[owner], (
                    f"out {out_port} owned by {owner} but not in its targets")
        for in_port, targets in enumerate(self._in_targets):
            for out_port in targets:
                assert self._out_owner[out_port] == in_port, (
                    f"in {in_port} claims out {out_port} owned by "
                    f"{self._out_owner[out_port]}")
