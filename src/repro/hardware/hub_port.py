"""HUB I/O ports (§4.1, Figure 5).

Functionally a port is an input queue plus an output register.  The port
extracts commands from the incoming byte stream (forwarding
serialisation-requiring ones to the central controller and executing
"localized" ones itself), forwards the remaining bytes through whatever
crossbar connections exist, and maintains the ready bit used for
inter-HUB packet-switched flow control (§4.2.3).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Any, Optional, Union

from ..sim import Broadcast, Store
from .frames import Packet, Reply
from .hub_commands import CommandOp, OPEN_OPS

__all__ = ["HubPort"]

if TYPE_CHECKING:  # pragma: no cover
    from .fiber import Fiber
    from .hub import Hub


class HubPort:
    """One of the HUB's I/O ports."""

    def __init__(self, hub: "Hub", index: int) -> None:
        self.hub = hub
        self.index = index
        self.sim = hub.sim
        #: Fiber this port transmits on (toward its peer).  Set at wiring.
        self.out_fiber: Optional["Fiber"] = None
        #: The device at the far end (a HubPort or a CAB-like endpoint).
        self.peer: Optional[Any] = None
        # The ready bit and queue depths live in the hub's per-port
        # arrays (``hub.ready_bits``/``hub.queue_depths``/
        # ``hub.max_queue_depths``) so per-hop updates are index stores;
        # the properties below keep the per-port view.
        self.ready_changed = Broadcast(self.sim)
        self.enabled = True
        self.loopback = False
        self._arrivals: Store = Store(self.sim)
        self._worker = self.sim.process(self._input_loop(),
                                        name=f"{hub.name}.p{index}")

    @property
    def ready_bit(self) -> bool:
        """Ready bit: "the input queue of the next HUB connected to it is
        ready to store a new packet" (§4.2.3).  Backed by
        ``hub.ready_bits[index]``."""
        return self.hub.ready_bits[self.index]

    @ready_bit.setter
    def ready_bit(self, value: bool) -> None:
        self.hub.ready_bits[self.index] = value

    @property
    def max_queue_depth(self) -> int:
        """High-water mark of the input queue (``hub.max_queue_depths``)."""
        return self.hub.max_queue_depths[self.index]

    # ------------------------------------------------------------------
    # fiber endpoint protocol
    # ------------------------------------------------------------------

    def deliver(self, item: Union[Packet, Reply], wire_size: int) -> None:
        """Head of ``item`` has arrived on this port's input fiber."""
        if isinstance(item, Reply):
            # Replies steal cycles on the reverse path; route immediately.
            self.hub.route_reply(item)
            return
        if not self.enabled:
            self.hub.count("drops_disabled_port")
            # The packet is consumed right here, so the drained signal
            # must still travel upstream: the sender cleared its ready
            # bit on transmission and would otherwise wait on it forever
            # once the port re-enables (§4.2.3).
            if not self._arrivals.items:
                self._signal_upstream_drained()
            return
        self._arrivals.put((item, wire_size, self.sim.now))
        hub = self.hub
        index = self.index
        depth = len(self._arrivals.items)
        hub.queue_depths[index] = depth
        if depth > hub.max_queue_depths[index]:
            hub.max_queue_depths[index] = depth

    def notify_ready(self) -> None:
        """Downstream input queue drained: raise the ready bit."""
        self.hub.ready_bits[self.index] = True
        self.ready_changed.fire()
        # Test-opens queued in the controller may now proceed (§4.2.3).
        self.hub.notify_ready_changed(self.index)

    # ------------------------------------------------------------------
    # input processing
    # ------------------------------------------------------------------

    def _input_loop(self):
        queue_depths = self.hub.queue_depths
        index = self.index
        while True:
            packet, size, head_time = yield self._arrivals.get()
            queue_depths[index] = len(self._arrivals.items)
            yield from self._handle(packet, size, head_time)
            # The packet has fully left this input queue: signal upstream
            # (the signal travels the reverse fiber, §4.2.3).
            if not self._arrivals.items:
                self._signal_upstream_drained()

    def _signal_upstream_drained(self) -> None:
        peer = self.peer
        if peer is None:
            return
        delay = self.hub.fiber_cfg.propagation_ns
        # A partition-boundary stub (repro.scaleout) captures the ready
        # signal at commit time so it can cross process boundaries with
        # its arrival timestamp intact; this is the tightest cross-link
        # interaction, so its delay *is* the conservative lookahead.
        schedule = getattr(peer, "schedule_notify_ready", None)
        if schedule is not None:
            schedule(delay)
            return
        self.sim.call_in(delay, peer.notify_ready)

    def _handle(self, packet: Packet, size: int, head_time: int):
        hub = self.hub
        cfg = hub.cfg
        if packet.meta.get("framing_error"):
            # Damaged on the way in: discard after it drains the queue.
            hub.count("framing_errors")
            return
        if self.loopback:
            # Supervisor loopback: echo the packet back out our own fiber.
            yield self.sim.timeout(cfg.transfer_ns)
            yield self.out_fiber.send(packet)
            hub.count("loopback_packets")
            return
        packet.record_hop(hub, self.index)
        closing = False
        first = True
        while packet.commands:
            command = packet.commands[0]
            if command.hub_id not in (hub.name, "*"):
                break
            if command.op is CommandOp.CLOSE_ALL:
                # A travelling close: forward it, then tear down behind it.
                closing = True
                break
            packet.commands.pop(0)
            if not first:
                # Later commands are still streaming in at fiber rate
                # (collective commands carry extension bytes).
                yield self.sim.timeout(round(
                    command.wire_bytes(cfg.command_bytes)
                    * hub.fiber_cfg.ns_per_byte))
            first = False
            yield self.sim.timeout(cfg.port_command_cycles * cfg.cycle_ns)
            result = yield from hub.execute_command(
                command, in_port=self.index,
                reverse_path=list(packet.reverse_path))
            if command.op in OPEN_OPS and not result.get("ok", False):
                hub.count("opens_abandoned")
        outputs = sorted(hub.crossbar.outputs_of(self.index))
        has_remainder = bool(packet.commands) or packet.has_payload \
            or packet.close_after or closing
        if not has_remainder:
            return
        if not outputs:
            if closing:
                # Nothing further to close here; consume the command.
                hub.count("close_all_terminated")
            else:
                hub.count("stray_packets")
            return
        # Cut-through forwarding: 5 cycles from input queue to output
        # register (§4), then the output fiber serialises the bytes.
        yield self.sim.timeout(cfg.transfer_ns)
        done_events = []
        for out_index in outputs:
            clone = self._clone_for(packet, len(outputs) > 1)
            done_events.append(self.sim.process(
                self._transmit(out_index, clone, closing),
                name=f"{hub.name}.p{self.index}->p{out_index}"))
        yield self.sim.all_of(done_events)
        if closing:
            freed = hub.crossbar.disconnect_input(self.index)
            for out_index in freed:
                hub.notify_output_freed(out_index)
            hub.count("close_all_executed")

    def _clone_for(self, packet: Packet, multicast: bool) -> Packet:
        """Copy a packet for one multicast branch.

        The byte stream sent down every branch is identical; cloning only
        exists so each branch keeps its own command cursor, reverse path
        and corruption flag.
        """
        if not multicast:
            return packet
        payload = None
        if packet.payload is not None:
            payload = dc_replace(packet.payload)
        clone = Packet(
            origin=packet.origin,
            commands=[dc_replace(c) for c in packet.commands],
            payload=payload,
            close_after=packet.close_after,
            command_bytes=packet.command_bytes,
            framing_bytes=packet.framing_bytes,
        )
        clone.meta = dict(packet.meta)
        clone.reverse_path = list(packet.reverse_path)
        return clone

    def _transmit(self, out_index: int, packet: Packet, closing: bool):
        hub = self.hub
        out_port = hub.ports[out_index]
        if packet.has_payload:
            # Start of packet at the output register clears the ready bit
            # (§4.2.3); it rises again when the downstream queue drains.
            hub.ready_bits[out_index] = False
        yield out_port.out_fiber.send(packet)
        hub.count("packets_forwarded")
        if packet.close_after or closing:
            hub.close_output(out_index)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def register_metrics(self, registry, sampler) -> None:
        """Expose this port to the observability layer (§4.1).

        Sampled per port: input-queue depth, ready-bit occupancy, and —
        when the port is wired — output-fiber utilization (busy fraction
        derived from bytes serialised per sampling interval).
        """
        base = f"{self.hub.name}.p{self.index}"
        hub = self.hub
        index = self.index
        sampler.add_probe(
            f"{base}.queue_depth", lambda: float(len(self._arrivals)),
            description="packets waiting in the port input queue",
            unit="packets")
        sampler.add_probe(
            f"{base}.ready",
            lambda: 1.0 if hub.ready_bits[index] else 0.0,
            description="ready bit (inter-HUB flow control, §4.2.3)")
        if self.out_fiber is not None:
            fiber = self.out_fiber
            sampler.add_utilization_probe(
                f"{base}.util", lambda: fiber.bytes_sent,
                self.hub.fiber_cfg.ns_per_byte,
                description="output fiber busy fraction")
            if isinstance(self.peer, HubPort):
                # Inter-HUB links get the full fiber family too — they
                # are the shared resource meshes saturate on first.
                fiber.register_metrics(registry, sampler)

    # ------------------------------------------------------------------
    # supervisor operations
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Supervisor port reset: flush the queue, raise the ready bit."""
        self._arrivals.items.clear()
        hub = self.hub
        hub.queue_depths[self.index] = 0
        hub.ready_bits[self.index] = True
        self.ready_changed.fire()

    def status(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "enabled": self.enabled,
            "loopback": self.loopback,
            "ready": self.ready_bit,
            "queued": len(self._arrivals),
            "owner": self.hub.crossbar.owner_of(self.index),
            "feeds": sorted(self.hub.crossbar.outputs_of(self.index)),
        }
