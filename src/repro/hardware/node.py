"""Node hosts: the existing machines plugged into Nectar (§3.2, §6.2.3).

A node is "any system running UNIX or Mach with a VME interface" — Sun-3s,
Sun-4s and Warps in the prototype.  What matters to Nectar's latency story
is the node's *software* cost profile: syscalls, copies, interrupts and
scheduling dominate end-to-end time on current LANs (§3.1).  The model
charges those costs explicitly; node application code runs as simulator
processes using the cost helpers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..config import NodeConfig
from ..errors import NodeError
from ..sim import Process, Resource, Simulator, units

if TYPE_CHECKING:  # pragma: no cover
    from .cab import CabBoard


class NodeHost:
    """A general-purpose or specialised machine attached via a CAB."""

    def __init__(self, sim: Simulator, name: str, cfg: NodeConfig,
                 machine_type: str = "sun") -> None:
        self.sim = sim
        self.name = name
        self.cfg = cfg
        self.machine_type = machine_type
        self.cpu = Resource(sim, capacity=1)
        self.cab: Optional["CabBoard"] = None
        self.busy_ns = 0
        self.syscalls = 0
        self.interrupts = 0
        self.copies_bytes = 0
        self._processes: list[Process] = []

    # ------------------------------------------------------------------

    def attach_cab(self, cab: "CabBoard") -> None:
        if self.cab is not None:
            raise NodeError(f"{self.name} already has a CAB")
        self.cab = cab

    def run(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a node process (application or kernel activity)."""
        process = self.sim.process(generator,
                                   name=f"{self.name}.{name or 'proc'}")
        self._processes.append(process)
        process.add_callback(lambda _e: self._processes.remove(process)
                             if process in self._processes else None)
        return process

    # ------------------------------------------------------------------
    # cost helpers (all generators; they serialise on the node CPU)
    # ------------------------------------------------------------------

    def _charge(self, cost_ns: int):
        if cost_ns <= 0:
            return
        grant = self.cpu.acquire()
        yield grant
        try:
            yield self.sim.timeout(cost_ns)
            self.busy_ns += cost_ns
        finally:
            self.cpu.release()

    def compute(self, cost_ns: int):
        """Plain user-level computation."""
        yield from self._charge(cost_ns)

    def syscall_cost(self):
        """Kernel entry/exit for one system call."""
        self.syscalls += 1
        yield from self._charge(self.cfg.syscall_ns)

    def interrupt_cost(self):
        """Service one device interrupt."""
        self.interrupts += 1
        yield from self._charge(self.cfg.interrupt_ns)

    def schedule_cost(self):
        """Wakeup-to-run latency for a blocked process."""
        yield from self._charge(self.cfg.scheduling_latency_ns)

    def context_switch_cost(self):
        """A full process context switch."""
        yield from self._charge(self.cfg.context_switch_ns)

    def copy(self, num_bytes: int):
        """Memory-to-memory copy on the node."""
        if num_bytes <= 0:
            return
        self.copies_bytes += num_bytes
        yield from self._charge(
            units.transfer_time(num_bytes, self.cfg.copy_bytes_per_ns))

    def kernel_protocol_cost(self):
        """In-kernel protocol processing for one packet (interface 3 and
        the LAN baseline: the node runs the whole transport itself)."""
        yield from self._charge(self.cfg.kernel_protocol_ns)

    # ------------------------------------------------------------------
    # VME access to CAB memory (§6.2.3 interface 1: mapped shared memory)
    # ------------------------------------------------------------------

    def vme_write(self, num_bytes: int):
        """Write into mapped CAB memory (the node is bus master)."""
        if self.cab is None:
            raise NodeError(f"{self.name} has no CAB attached")
        yield from self.cab.vme.transfer(num_bytes)

    def vme_read(self, num_bytes: int):
        """Read from mapped CAB memory."""
        if self.cab is None:
            raise NodeError(f"{self.name} has no CAB attached")
        yield from self.cab.vme.transfer(num_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NodeHost {self.name} ({self.machine_type})>"
