"""The HUB central controller (§4.1).

Commands that require serialisation — opens and locks — are forwarded here
by the I/O ports.  The controller executes one command per 70 ns cycle, so
it "can set up a new connection through the crossbar switch every 70
nanosecond cycle" (§4, goal 2).  Retrying commands do not stall the
pipeline: a refused ``*_with_retry`` registers as a waiter on its output
port and is re-issued (costing a fresh cycle) when the port frees or its
ready bit rises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..sim import Event, Store
from .frames import HubCommand
from .hub_commands import (CommandOp, has_retry, is_collective, is_open,
                           is_test_open)

if TYPE_CHECKING:  # pragma: no cover
    from .hub import Hub


@dataclass
class ControllerJob:
    """One command in flight through the controller."""

    command: HubCommand
    in_port: int
    reverse_path: list = field(default_factory=list)
    done: Optional[Event] = None
    attempts: int = 0
    deadline_armed: bool = False

    @property
    def finished(self) -> bool:
        return self.done is not None and self.done.triggered

    def finish(self, ok: bool, **info: Any) -> None:
        result = {"ok": ok, **info}
        if self.done is not None and not self.done.triggered:
            self.done.succeed(result)


class HubController:
    """Serialises connection and lock commands at one per cycle."""

    def __init__(self, hub: "Hub") -> None:
        self.hub = hub
        self.sim = hub.sim
        self.cfg = hub.cfg
        self._queue: Store = Store(self.sim)
        #: Per-output FIFO of jobs waiting for the port to free or ready.
        self._waiters: dict[int, list[ControllerJob]] = {}
        self.commands_executed = 0
        self.frozen = False
        #: Watchdog limit (cycles) for retrying jobs; 0 disables.
        self.retry_timeout_cycles = 0
        self._engine = self.sim.process(self._run(),
                                        name=f"{hub.name}.controller")

    # ------------------------------------------------------------------

    def submit(self, command: HubCommand, in_port: int,
               reverse_path: list) -> Event:
        """Queue a command; the returned event fires with a result dict."""
        job = ControllerJob(command, in_port, reverse_path,
                            done=self.sim.event())
        self._queue.put(job)
        return job.done

    def _resubmit(self, job: ControllerJob) -> None:
        self._queue.put(job)

    def _run(self):
        while True:
            job = yield self._queue.get()
            # One command per controller cycle (§4, goal 2).
            yield self.sim.timeout(self.cfg.cycle_ns)
            self.commands_executed += 1
            self._dispatch(job)

    # ------------------------------------------------------------------

    def _dispatch(self, job: ControllerJob) -> None:
        command = job.command
        op = command.op
        job.attempts += 1
        if self.frozen and not op.name.startswith("SV_"):
            job.finish(False, reason="frozen")
            return
        if is_collective(op):
            # Combining happens at controller-cycle rate; the unit
            # finishes the job immediately (never parking the port) and
            # answers the origin with its own reply later.
            self.hub.collectives.execute(job)
            return
        if is_open(op):
            self._try_open(job)
        elif op in (CommandOp.LOCK, CommandOp.LOCK_REPLY,
                    CommandOp.LOCK_RETRY_REPLY):
            self._try_lock(job)
        elif op is CommandOp.UNLOCK:
            self._unlock(job)
        else:  # pragma: no cover - ports never route others here
            job.finish(False, reason="not a controller command")

    def _try_open(self, job: ControllerJob) -> None:
        hub = self.hub
        out_port = job.command.param
        if not 0 <= out_port < hub.cfg.num_ports:
            job.finish(False, reason="bad port")
            return
        port = hub.ports[out_port]
        problem: Optional[str] = None
        if not port.enabled:
            # A disabled port never frees; retrying would hang forever.
            job.finish(False, reason="port disabled")
            return
        holder = hub.locks.get(out_port)
        if holder is not None and holder != job.command.origin:
            problem = "locked"
        elif hub.crossbar.output_busy(out_port) \
                and hub.crossbar.owner_of(out_port) != job.in_port:
            problem = "busy"
        elif is_test_open(job.command.op) and not hub.ready_bits[out_port]:
            problem = "not ready"
        if problem is None:
            hub.crossbar.connect(job.in_port, out_port)
            hub.count("opens_ok")
            job.finish(True, out_port=out_port)
            return
        hub.count("opens_refused")
        if has_retry(job.command.op) and not self._watchdog_expired(job):
            self._wait_on(out_port, job)
        else:
            job.finish(False, reason=problem)

    def _try_lock(self, job: ControllerJob) -> None:
        hub = self.hub
        out_port = job.command.param
        if not 0 <= out_port < hub.cfg.num_ports:
            job.finish(False, reason="bad port")
            return
        holder = hub.locks.get(out_port)
        if holder is None or holder == job.command.origin:
            hub.locks[out_port] = job.command.origin
            hub.count("locks_taken")
            job.finish(True, locked=out_port)
        elif has_retry(job.command.op) and not self._watchdog_expired(job):
            self._wait_on(out_port, job)
        else:
            job.finish(False, reason="locked", holder=holder)

    def _unlock(self, job: ControllerJob) -> None:
        hub = self.hub
        out_port = job.command.param
        holder = hub.locks.get(out_port)
        if holder != job.command.origin:
            job.finish(False, reason="not lock holder", holder=holder)
            return
        del hub.locks[out_port]
        hub.count("locks_released")
        job.finish(True)
        # Lock release can unblock queued opens on that output.
        self.notify(out_port)

    # ------------------------------------------------------------------
    # retry machinery
    # ------------------------------------------------------------------

    def _watchdog_expired(self, job: ControllerJob) -> bool:
        if self.retry_timeout_cycles <= 0:
            return False
        return job.attempts > self.retry_timeout_cycles

    def _wait_on(self, out_port: int, job: ControllerJob) -> None:
        self._waiters.setdefault(out_port, []).append(job)
        if self.retry_timeout_cycles > 0 and not job.deadline_armed:
            # The retry watchdog (SV_SET_TIMEOUT): abandon a retrying
            # command that has waited the configured number of cycles.
            job.deadline_armed = True
            delay = self.retry_timeout_cycles * self.cfg.cycle_ns
            self.sim.call_in(delay, lambda: self._expire(out_port, job))

    def _expire(self, out_port: int, job: ControllerJob) -> None:
        if job.finished:
            return
        waiters = self._waiters.get(out_port)
        if waiters and job in waiters:
            waiters.remove(job)
        self.hub.count("retry_watchdog_expirations")
        job.finish(False, reason="retry timeout")

    def notify(self, out_port: int) -> None:
        """The output freed / became ready / unlocked: re-issue waiters.

        All waiters re-enter the command queue; the first keeps the port
        and the rest re-register, preserving FIFO fairness.
        """
        jobs = self._waiters.pop(out_port, None)
        if not jobs:
            return
        for job in jobs:
            self._resubmit(job)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def register_metrics(self, registry, sampler) -> None:
        """Export controller health as sampled series (``repro.observe``).

        Queue depth and waiter count expose head-of-line pressure on the
        one-command-per-cycle pipeline; the frozen gauge and watchdog
        counter surface supervisor interventions.
        """
        name = self.hub.name
        sampler.add_probe(
            f"{name}.controller.commands",
            lambda: float(self.commands_executed),
            description="commands executed by the central controller",
            unit="commands")
        sampler.add_utilization_probe(
            f"{name}.controller.util",
            lambda: self.commands_executed,
            self.cfg.cycle_ns,
            description="fraction of controller cycles spent executing")
        sampler.add_probe(
            f"{name}.controller.queue_depth",
            lambda: float(len(self._queue.items)),
            description="commands queued for the controller pipeline",
            unit="commands")
        sampler.add_probe(
            f"{name}.controller.waiters",
            lambda: float(sum(len(jobs) for jobs in self._waiters.values())),
            description="retrying commands parked on busy outputs",
            unit="commands")
        sampler.add_probe(
            f"{name}.controller.frozen",
            lambda: float(self.frozen),
            description="1 while SV_FREEZE blocks user commands",
            unit="bool")
        sampler.add_probe(
            f"{name}.controller.retry_expirations",
            lambda: float(self.hub.counters.get(
                "retry_watchdog_expirations", 0)),
            description="retrying commands abandoned by the watchdog",
            unit="events")

    def reset(self) -> None:
        """Supervisor reset: fail all queued and waiting commands."""
        for jobs in self._waiters.values():
            for job in jobs:
                job.finish(False, reason="hub reset")
        self._waiters.clear()
        while True:
            ok, job = self._queue.try_get()
            if not ok:
                break
            job.finish(False, reason="hub reset")
