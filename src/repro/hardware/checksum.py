"""The CAB's hardware checksum unit (§5.1).

"Hardware checksum computation removes this burden from protocol
software": with the unit enabled, checksums are computed on the fly as
DMA streams data, adding zero time.  Disabling it (an ablation the
benchmarks exercise) makes the caller charge
``software_checksum_ns_per_byte`` of CPU time per byte instead.
"""

from __future__ import annotations

from ..config import CabConfig
from .frames import Payload, fletcher16


class ChecksumUnit:
    """Computes Fletcher-16 checksums for payloads in flight."""

    def __init__(self, cfg: CabConfig) -> None:
        self.cfg = cfg
        self.checksums_computed = 0

    @property
    def hardware(self) -> bool:
        return self.cfg.hardware_checksum

    def cost_ns(self, num_bytes: int) -> int:
        """CPU time the computation costs (0 with the hardware unit)."""
        if self.cfg.hardware_checksum:
            return 0
        return num_bytes * self.cfg.software_checksum_ns_per_byte

    def compute(self, payload: Payload) -> int:
        self.checksums_computed += 1
        return payload.compute_checksum()

    def seal(self, payload: Payload) -> Payload:
        self.checksums_computed += 1
        return payload.seal()

    def verify(self, payload: Payload) -> bool:
        self.checksums_computed += 1
        return payload.verify_checksum()


def raw_checksum(data: bytes) -> int:
    """Checksum bytes directly (used by tests)."""
    return fletcher16(data)
