"""Wire-level units: payloads, HUB commands, packets, and replies.

A Nectar packet on the fiber is a byte stream: an optional prefix of 3-byte
HUB commands (consumed hop by hop), an optional framed data segment
(``start of packet`` … ``end of packet``), and an optional trailing
``close all``.  The simulator carries these as structured
:class:`Packet` objects whose :meth:`Packet.wire_size` reproduces the byte
count the hardware would see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import accumulate, count
from typing import TYPE_CHECKING, Any, Optional

from .hub_commands import CommandOp

if TYPE_CHECKING:  # pragma: no cover
    from .hub import Hub

_packet_ids = count(1)
_command_seqs = count(1)

#: Bytes per Fletcher-16 block.  Intermediate sums stay well inside a
#: machine word: 65536 blocks of prefix sums of 255-valued bytes top out
#: near 2**40.
_FLETCHER_BLOCK = 65536


def fletcher16(data: bytes) -> int:
    """The checksum the CAB's hardware unit computes (Fletcher-16).

    Blocked deferred-modulo form of the classic per-byte recurrence
    ``low += b; high += low`` (both mod 255).  Over a block ``B`` of
    ``m`` bytes the recurrence is linear, so::

        low'  = low + sum(B)
        high' = high + m*low + sum(prefix_sums(B))

    with a single modulo at the block boundary.  ``sum`` and
    ``itertools.accumulate`` run at C speed, replacing the per-byte
    Python loop (~10-50x on kilobyte payloads); the block size keeps the
    deferred sums word-sized.  Checksums are bit-identical to the
    per-byte form — pinned by a property test against the reference
    implementation in ``tests/test_frames.py``.
    """
    low = high = 0
    view = memoryview(data)
    for start in range(0, len(view), _FLETCHER_BLOCK):
        block = view[start:start + _FLETCHER_BLOCK]
        high = (high + len(block) * low + sum(accumulate(block))) % 255
        low = (low + sum(block)) % 255
    return (high << 8) | low


@dataclass(slots=True)
class Payload:
    """The data segment of a packet.

    ``size`` is what timing is computed from; ``data`` optionally carries
    real bytes so integrity (checksums, reassembly) can be verified
    end-to-end in tests.  ``header`` holds transport-layer fields — the
    model keeps them structured rather than serialised, but charges
    ``header_bytes`` of wire size for them.
    """

    size: int
    data: Optional[bytes] = None
    header: dict[str, Any] = field(default_factory=dict)
    checksum: Optional[int] = None
    corrupt: bool = False
    #: Memoized checksum — ``size``/``data`` are fixed after construction
    #: (fault injection flips ``corrupt``, never the bytes), so the value
    #: computed by the send-side DMA is reused by every later verify.
    _computed: Optional[int] = field(
        default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.data is not None and len(self.data) != self.size:
            raise ValueError(
                f"payload size {self.size} != len(data) {len(self.data)}")
        if self.size < 0:
            raise ValueError(f"negative payload size {self.size}")

    def seal(self) -> "Payload":
        """Compute and attach the checksum (as the send-side DMA would)."""
        self.checksum = self.compute_checksum()
        return self

    def compute_checksum(self) -> int:
        computed = self._computed
        if computed is None:
            if self.data is not None:
                computed = fletcher16(self.data)
            else:
                # Synthetic payloads checksum over their size so corruption
                # of the flag is still detectable.
                computed = fletcher16(self.size.to_bytes(8, "little"))
            self._computed = computed
        return computed

    def verify_checksum(self) -> bool:
        """True if the payload is intact (fails when fault injection hit)."""
        if self.corrupt:
            return False
        if self.checksum is None:
            return True
        return self.checksum == self.compute_checksum()


#: Wire bytes charged for the optional argument extension a collective
#: command carries (epoch / combining operand words).  Plain commands
#: stay exactly 3 bytes, so pre-existing timings are untouched.
COLLECTIVE_ARG_BYTES = 8


@dataclass(slots=True)
class HubCommand:
    """One 3-byte HUB command: ``(op, hub, param)`` (§4.2).

    Collective commands (``repro.collectives``) additionally carry a
    small structured ``arg`` — the combining operand, epoch, and tree
    spec — charged as :data:`COLLECTIVE_ARG_BYTES` extension bytes on
    the wire.
    """

    op: CommandOp
    hub_id: str
    param: int = 0
    seq: int = field(default_factory=lambda: next(_command_seqs))
    #: Name of the CAB that issued the command (for reply delivery).
    origin: Optional[str] = None
    #: Collective argument extension (None for ordinary commands).
    arg: Optional[dict] = None

    def wire_bytes(self, command_bytes: int) -> int:
        """Bytes this command occupies on the fiber."""
        if self.arg is not None:
            return command_bytes + COLLECTIVE_ARG_BYTES
        return command_bytes

    def __repr__(self) -> str:
        return f"<{self.op.name} {self.hub_id} p={self.param} #{self.seq}>"


@dataclass
class Reply:
    """A HUB's answer to a ``*_reply`` or status command.

    Replies travel backwards over the route the command packet established,
    stealing cycles so they are never blocked (§4.2.1).
    """

    seq: int
    ok: bool
    hub_id: str
    info: dict[str, Any] = field(default_factory=dict)
    wire_size: int = 3


class Packet:
    """A unit of traffic on the Nectar-net.

    ``commands`` is the leading command prefix; each HUB consumes the
    commands addressed to itself and forwards the remainder through the
    connections those commands opened.  ``payload`` is the framed data
    segment (or None for pure command packets).  ``close_after`` appends a
    ``close all`` that tears connections down behind the data (§4.2.1).
    """

    __slots__ = ("packet_id", "commands", "payload", "close_after", "origin",
                 "reverse_path", "meta", "command_bytes", "framing_bytes")

    def __init__(self, origin: str,
                 commands: Optional[list[HubCommand]] = None,
                 payload: Optional[Payload] = None,
                 close_after: bool = False,
                 command_bytes: int = 3,
                 framing_bytes: int = 2,
                 header_bytes: int = 0) -> None:
        self.packet_id = next(_packet_ids)
        self.commands: list[HubCommand] = list(commands or [])
        self.payload = payload
        self.close_after = close_after
        self.origin = origin
        #: Hops recorded on the way in: list of (hub, input_port_index).
        self.reverse_path: list[tuple["Hub", int]] = []
        self.meta: dict[str, Any] = {"header_bytes": header_bytes}
        self.command_bytes = command_bytes
        self.framing_bytes = framing_bytes

    @property
    def has_payload(self) -> bool:
        return self.payload is not None

    def wire_size(self) -> int:
        """Bytes this packet occupies on a fiber *from here onward*."""
        size = len(self.commands) * self.command_bytes
        for command in self.commands:
            if command.arg is not None:
                size += COLLECTIVE_ARG_BYTES
        if self.payload is not None:
            size += (self.framing_bytes + self.meta.get("header_bytes", 0)
                     + self.payload.size)
        if self.close_after:
            size += self.command_bytes
        return size

    def record_hop(self, hub: "Hub", in_port: int) -> None:
        self.reverse_path.append((hub, in_port))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"#{self.packet_id}", f"from={self.origin}"]
        if self.commands:
            parts.append(f"cmds={len(self.commands)}")
        if self.payload is not None:
            parts.append(f"data={self.payload.size}B")
        if self.close_after:
            parts.append("close_all")
        return f"<Packet {' '.join(parts)}>"
