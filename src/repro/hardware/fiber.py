"""Unidirectional fiber-optic links (§3.2).

Each fiber carries 100 Mb/s (TAXI-limited), i.e. 80 ns/byte, plus a small
propagation delay.  Packets serialise FIFO; replies "steal cycles" and are
never blocked (§4.2.1), modelled by :meth:`Fiber.send_priority`.

Fault injection (drop/corrupt probabilities from
:class:`~repro.config.FiberConfig`) lives here because a 1989 fiber run
really was where bits died; reliable transports recover from it.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Optional, Protocol

from ..config import FiberConfig
from ..sim import Event, Simulator, Store, units
from .frames import Packet, Reply

__all__ = ["FiberEndpoint", "Fiber", "DuplexFiber"]

if TYPE_CHECKING:  # pragma: no cover
    pass


class FiberEndpoint(Protocol):
    """Anything that can terminate a fiber (a HUB port or a CAB)."""

    def deliver(self, item: Any, wire_size: int) -> None:
        """Called when the item's *head* arrives.  ``wire_size`` lets the
        receiver compute when the tail will have arrived."""


#: Indices into :attr:`Fiber.stats` — one flat int list per fiber so the
#: transmit loop's per-packet accounting is two index stores on a local,
#: not four attribute chases through the instance dict.
_SENT, _DROPPED, _REPLIES_DROPPED, _BYTES = range(4)


class Fiber:
    """One direction of a fiber pair."""

    # Slots make every hot attribute a fixed-offset load in the transmit
    # loop.  ``__dict__`` stays in the layout (created lazily, so plain
    # fibers never allocate one) because instrumentation taps patch
    # per-instance ``send`` wrappers, and subclasses (the scale-out
    # boundary fiber) hang extra attributes off it.
    __slots__ = ("sim", "cfg", "name", "rng", "endpoint", "_pending",
                 "_head_latency", "_xfer_cache", "_transmitter",
                 "fault_down", "fault_drop", "fault_corrupt",
                 "fault_reply_drop", "stats", "__dict__")

    def __init__(self, sim: Simulator, cfg: FiberConfig, name: str,
                 rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.cfg = cfg
        self.name = name
        # Each link gets its own fault stream.  A shared default (the old
        # ``random.Random(0)``) made every fiber in a system drop/corrupt
        # in lockstep; deriving from the link name keeps unseeded fibers
        # independent, and system builders pass seed-derived streams from
        # :meth:`~repro.config.NectarConfig.rng_stream`.
        self.rng = rng or random.Random(f"fiber:{name}")
        self.endpoint: Optional[FiberEndpoint] = None
        self._pending: Store = Store(sim)
        # Per-packet timing is pure arithmetic over a fixed rate, so the
        # head latency is computed once and serialization times are memoized
        # per wire size (fragment sizes repeat heavily under load).
        self._head_latency = (cfg.propagation_ns
                              + units.transfer_time(1, cfg.bytes_per_ns))
        self._xfer_cache: dict[int, int] = {}
        self._transmitter = sim.process(self._transmit_loop(),
                                        name=f"fiber:{name}")
        # Fault-injection overlay (``repro.faults``).  Per-fiber state so
        # a campaign degrading one link never mutates the FiberConfig,
        # which is shared by every fiber in the system.
        self.fault_down = False
        self.fault_drop = 0.0
        self.fault_corrupt = 0.0
        self.fault_reply_drop = 0.0
        # Statistics, packed into one flat list (see the _SENT.._BYTES
        # index constants); the named views below are the public API.
        self.stats = [0, 0, 0, 0]

    @property
    def packets_sent(self) -> int:
        """Packets fully serialised onto the line."""
        return self.stats[_SENT]

    @property
    def packets_dropped(self) -> int:
        """Packets killed by fault injection (framing error or vanish)."""
        return self.stats[_DROPPED]

    @property
    def replies_dropped(self) -> int:
        """Replies/ready signals lost to injected faults."""
        return self.stats[_REPLIES_DROPPED]

    @property
    def bytes_sent(self) -> int:
        """Cumulative bytes serialised (drives utilization probes)."""
        return self.stats[_BYTES]

    def connect(self, endpoint: FiberEndpoint) -> None:
        if self.endpoint is not None:
            raise RuntimeError(f"fiber {self.name} already terminated")
        self.endpoint = endpoint

    # ------------------------------------------------------------------

    def send(self, item: Any, wire_size: Optional[int] = None) -> Event:
        """Queue ``item`` for transmission; event fires when the tail has
        left this end of the fiber."""
        size = self._size_of(item, wire_size)
        done = self.sim.event()
        self._pending.put((item, size, done))
        return done

    def send_priority(self, item: Any, wire_size: Optional[int] = None) -> None:
        """Transmit by cycle-stealing: never waits for queued traffic.

        Used for replies and ready signals, which the hardware guarantees
        reach the origin "within a bounded amount of time" (§4.2.1) —
        unless the fiber itself is faulted: replies have no framing-error
        recovery path, so a downed link or a reply-loss storm makes them
        vanish, exercising the sender's timeout-and-retry machinery.
        """
        size = self._size_of(item, wire_size)
        if self.fault_down or (self.fault_reply_drop > 0.0
                               and self.rng.random() < self.fault_reply_drop):
            self.stats[_REPLIES_DROPPED] += 1
            return
        latency = self.cfg.propagation_ns + self._serialization(size)
        self.stats[_BYTES] += size
        self._schedule_delivery(latency, item, size)

    def _size_of(self, item: Any, wire_size: Optional[int]) -> int:
        if wire_size is not None:
            return wire_size
        if isinstance(item, Packet):
            return item.wire_size()
        if isinstance(item, Reply):
            return item.wire_size
        raise TypeError(f"cannot size {item!r}; pass wire_size")

    def _serialization(self, size: int) -> int:
        """Memoized ``transfer_time`` for this fiber's fixed byte rate."""
        ticks = self._xfer_cache.get(size)
        if ticks is None:
            ticks = units.transfer_time(size, self.cfg.bytes_per_ns)
            self._xfer_cache[size] = ticks
        return ticks

    def _transmit_loop(self):
        sim = self.sim
        pending = self._pending
        stats = self.stats
        while True:
            item, size, done = yield pending.get()
            serialization = self._serialization(size)
            # Cut-through: the head arrives after propagation plus one byte
            # time; the line stays busy until the tail has been serialised.
            deliver = True
            if self._faulted(item):
                stats[_DROPPED] += 1
                if isinstance(item, Packet):
                    # A damaged packet still arrives and drains queues —
                    # the framing error is detected at reception, so
                    # flow-control (ready bit) accounting stays sound.
                    item.meta["framing_error"] = True
                else:
                    deliver = False  # replies/ready signals just vanish
            else:
                self._corrupt_maybe(item)
            if deliver:
                self._schedule_delivery(self._head_latency, item, size)
            yield sim.timeout(serialization)
            stats[_SENT] += 1
            stats[_BYTES] += size
            done.succeed()

    def _schedule_delivery(self, latency: int, item: Any, size: int) -> None:
        """Commit a delivery ``latency`` ticks from now.

        The single seam between "this item left the near end" and "this
        item arrives at the far end": both the cut-through path and the
        cycle-stealing priority path land here.  Partitioned scale-out
        runs (:mod:`repro.scaleout`) subclass this to capture the
        delivery into a cross-partition outbox instead of scheduling a
        local event — the ``now + latency`` arrival time is exactly what
        the conservative-lookahead protocol exchanges.
        """
        self.sim.call_in(latency, lambda: self._deliver(item, size))

    def _deliver(self, item: Any, size: int) -> None:
        if self.endpoint is None:
            raise RuntimeError(f"fiber {self.name} has no endpoint")
        self.endpoint.deliver(item, size)

    def set_fault(self, *, down: Optional[bool] = None,
                  drop: Optional[float] = None,
                  corrupt: Optional[float] = None,
                  reply_drop: Optional[float] = None) -> None:
        """Apply a fault overlay (``repro.faults`` injection window).

        Only the keywords given are changed, so overlapping windows on
        different dimensions (e.g. a drop burst inside a reply storm)
        compose without clobbering each other.
        """
        if down is not None:
            self.fault_down = down
        if drop is not None:
            self.fault_drop = drop
        if corrupt is not None:
            self.fault_corrupt = corrupt
        if reply_drop is not None:
            self.fault_reply_drop = reply_drop

    def clear_fault(self) -> None:
        """Remove every fault overlay; baseline config faults remain."""
        self.fault_down = False
        self.fault_drop = 0.0
        self.fault_corrupt = 0.0
        self.fault_reply_drop = 0.0

    def _faulted(self, item: Any) -> bool:
        if self.fault_down:
            return True
        drop = max(self.cfg.drop_probability, self.fault_drop)
        if drop <= 0.0:
            return False
        return self.rng.random() < drop

    def _corrupt_maybe(self, item: Any) -> None:
        corrupt = max(self.cfg.corrupt_probability, self.fault_corrupt)
        if corrupt <= 0.0:
            return
        if isinstance(item, Packet) and item.payload is not None:
            if self.rng.random() < corrupt:
                item.payload.corrupt = True

    def register_metrics(self, registry, sampler,
                         prefix: Optional[str] = None) -> None:
        """Sampled link health: utilization, cumulative sends and drops."""
        base = prefix or f"fiber.{self.name}"
        sampler.add_utilization_probe(
            f"{base}.util", lambda: self.bytes_sent, self.cfg.ns_per_byte,
            description="fiber busy fraction (bytes serialised / interval)")
        sampler.add_probe(
            f"{base}.packets", lambda: float(self.packets_sent),
            description="cumulative packets serialised", unit="packets")
        sampler.add_probe(
            f"{base}.drops", lambda: float(self.packets_dropped),
            description="cumulative fault-injected drops", unit="packets")
        sampler.add_probe(
            f"{base}.reply_drops", lambda: float(self.replies_dropped),
            description="replies/ready signals lost to injected faults",
            unit="replies")

    def tail_delay(self, wire_size: int) -> int:
        """Ticks between head delivery and tail arrival for ``wire_size``."""
        serialization = units.transfer_time(wire_size, self.cfg.bytes_per_ns)
        return max(serialization - units.transfer_time(1, self.cfg.bytes_per_ns), 0)


class DuplexFiber:
    """The fiber pair connecting a CAB or HUB port to a HUB port (§3.1)."""

    def __init__(self, sim: Simulator, cfg: FiberConfig, name: str,
                 rng_a: Optional[random.Random] = None,
                 rng_b: Optional[random.Random] = None) -> None:
        self.forward = Fiber(sim, cfg, f"{name}:fwd", rng_a)
        self.backward = Fiber(sim, cfg, f"{name}:bwd", rng_b)
        self.name = name
