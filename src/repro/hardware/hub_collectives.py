"""The HUB collective unit: in-network combining (``repro.collectives``).

The paper's HUB already performs multicast in hardware (§4.2.2) and its
central controller serialises one command per 70 ns cycle (§4.1).  This
module extends that controller with the combining primitives the
Ultracomputer line of work put *inside* the switch:

* ``SV_FETCH_ADD`` — atomic fetch-and-add on a named HUB register; the
  controller cycle is the serialisation point, so concurrent adds
  combine at switch rate instead of bouncing a hot location between
  CABs.
* ``SV_BARRIER`` — arrival counting per group; when the last member
  arrives the release is multicast over the reverse paths by
  cycle-stealing replies (§4.2.1), i.e. a hardware multicast release.
* ``SV_REDUCE`` — like the barrier, but each arrival carries an operand
  that is folded into the group's accumulator; every member's release
  reply carries the fully reduced value (an allreduce in one round
  trip).
* ``SV_COLL_RESET`` — supervisor cleanup: fail parked joins cleanly and
  clear the group state and fetch-add register.

Groups span multiple HUBs through a k-ary reduction tree: each command
carries the (small) per-hub tree spec, a non-root HUB that has seen all
its local arrivals forwards one upward ``SV_BARRIER``/``SV_REDUCE`` to
its parent, and the parent's release reply fans back down the tree.
Commands park *outside* the controller pipeline — a waiting barrier
never stalls the port input loop, so overlapping collectives and
ordinary traffic proceed underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import HubCommandError
from .frames import HubCommand, Packet, Reply
from .hub_commands import CommandOp

__all__ = ["HubCollectiveUnit", "REDUCE_OPS"]

if TYPE_CHECKING:  # pragma: no cover
    from .hub import Hub
    from .hub_controller import ControllerJob

#: Combining operators the unit implements (integer operands).
REDUCE_OPS: dict[str, Callable[[int, int], int]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": min,
    "max": max,
    "band": lambda a, b: a & b,
    "bor": lambda a, b: a | b,
    "bxor": lambda a, b: a ^ b,
}


@dataclass
class CollectiveState:
    """One group's in-progress barrier or reduction on this HUB."""

    kind: str                  #: "barrier" or "reduce"
    epoch: int
    expected: int
    reduce_op: str = "sum"
    value: Optional[int] = None
    arrived: int = 0
    #: Joins waiting for the release: (command, reverse path) pairs.
    parked: list[tuple[HubCommand, list]] = field(default_factory=list)
    #: True once this (non-root) HUB forwarded its combined join upward.
    upstream_sent: bool = False


class HubCollectiveUnit:
    """Per-HUB state machine executing the collective supervisor ops."""

    def __init__(self, hub: "Hub") -> None:
        self.hub = hub
        self.sim = hub.sim
        #: Fetch-and-add registers: id -> value.
        self.registers: dict[int, int] = {}
        #: Active groups: group id -> state.
        self._groups: dict[int, CollectiveState] = {}

    # ------------------------------------------------------------------
    # controller dispatch (one call per controller cycle)
    # ------------------------------------------------------------------

    def execute(self, job: "ControllerJob") -> None:
        """Execute one collective command at controller-cycle cost.

        The job finishes immediately (``deferred=True``) so the issuing
        port's input loop is never parked on a waiting barrier; the
        actual answer travels later as a unit-issued reply.
        """
        command = job.command
        reverse_path = list(job.reverse_path)
        job.finish(True, deferred=True)
        op = command.op
        if op is CommandOp.SV_FETCH_ADD:
            self._fetch_add(command, reverse_path)
        elif op is CommandOp.SV_COLL_RESET:
            self._reset_group(command, reverse_path)
        elif op in (CommandOp.SV_BARRIER, CommandOp.SV_REDUCE):
            self._join(command, reverse_path)
        else:  # pragma: no cover - controller routes only collective ops
            raise HubCommandError(f"not a collective command: {command!r}")

    # ------------------------------------------------------------------
    # fetch-and-add
    # ------------------------------------------------------------------

    def _fetch_add(self, command: HubCommand, reverse_path: list) -> None:
        register = command.param
        arg = command.arg or {}
        delta = int(arg.get("delta", 1))
        old = self.registers.get(register, 0)
        self.registers[register] = old + delta
        self.hub.count("collective.fetch_adds")
        self._send_reply(command, True, reverse_path,
                         value=old, register=register)

    # ------------------------------------------------------------------
    # barrier / reduce joins
    # ------------------------------------------------------------------

    def _join(self, command: HubCommand, reverse_path: list) -> None:
        kind = "barrier" if command.op is CommandOp.SV_BARRIER else "reduce"
        group = command.param
        arg = command.arg or {}
        tree = arg.get("tree") or {}
        spec = tree.get(self.hub.name)
        if spec is None:
            self.hub.count("collective.rejected")
            self._send_reply(command, False, reverse_path, coll=group,
                             reason=f"no tree entry for {self.hub.name}")
            return
        epoch = int(arg.get("epoch", 0))
        state = self._groups.get(group)
        if state is None:
            state = CollectiveState(kind=kind, epoch=epoch,
                                    expected=int(spec["expected"]),
                                    reduce_op=str(arg.get("op", "sum")))
            self._groups[group] = state
        elif state.kind != kind or state.epoch != epoch:
            # A straggler from a previous epoch, or two different
            # collectives racing on one group id: refuse cleanly rather
            # than corrupt the count.
            self.hub.count("collective.stale")
            self._send_reply(command, False, reverse_path, coll=group,
                             epoch=epoch, reason="group busy "
                             f"({state.kind} epoch {state.epoch} active)")
            return
        state.arrived += 1
        if kind == "reduce":
            operand = int(arg.get("value", 0))
            fold = REDUCE_OPS.get(state.reduce_op)
            if fold is None:
                self.hub.count("collective.rejected")
                self._send_reply(command, False, reverse_path, coll=group,
                                 epoch=epoch, reason="unknown reduce op "
                                 f"{state.reduce_op!r}")
                return
            state.value = operand if state.value is None \
                else fold(state.value, operand)
        state.parked.append((command, reverse_path))
        self.hub.count(f"collective.{kind}_joins")
        if state.arrived < state.expected:
            return
        parent = spec.get("parent")
        if parent is None:
            # This HUB roots the tree: release everyone parked below.
            self._complete(group, state, ok=True, value=state.value)
        elif not state.upstream_sent:
            self._forward_up(group, state, spec, tree)

    def _forward_up(self, group: int, state: CollectiveState,
                    spec: dict[str, Any], tree: dict[str, Any]) -> None:
        """All local members arrived: join the parent HUB's group.

        The upward command is HUB-originated; its reply comes back to
        this HUB with an exhausted route and is dispatched to
        :meth:`on_reply`, which releases everything parked here.
        """
        state.upstream_sent = True
        op = CommandOp.SV_BARRIER if state.kind == "barrier" \
            else CommandOp.SV_REDUCE
        command = HubCommand(op, spec["parent_hub"], group,
                             origin=f"hub:{self.hub.name}")
        command.arg = {"epoch": state.epoch, "op": state.reduce_op,
                       "value": state.value, "tree": tree}
        packet = Packet(command.origin, commands=[command],
                        command_bytes=self.hub.cfg.command_bytes,
                        framing_bytes=self.hub.cfg.framing_bytes)
        port = self.hub.ports[spec["parent"]]
        self.hub.count("collective.upstream")
        self.sim.process(self._send_upstream(port, packet),
                         name=f"{self.hub.name}.coll-up:{group}")

    def _send_upstream(self, port, packet: Packet):
        # One crossbar transfer to the output register, then the fiber
        # serialises the command bytes.
        yield self.sim.timeout(self.hub.cfg.transfer_ns)
        if port.out_fiber is None:  # pragma: no cover - unwired topology
            raise HubCommandError(
                f"{self.hub.name}.p{port.index} is unwired; cannot "
                f"forward a collective upward")
        yield port.out_fiber.send(packet)

    def on_reply(self, reply: Reply) -> None:
        """A parent HUB answered our upward join: fan the release down."""
        group = reply.info.get("coll")
        state = self._groups.get(group)
        if state is None or state.epoch != reply.info.get("epoch"):
            self.hub.count("collective.stale")
            return
        self._complete(group, state, ok=reply.ok,
                       value=reply.info.get("value"),
                       reason=reply.info.get("reason"))

    # ------------------------------------------------------------------
    # completion and cleanup
    # ------------------------------------------------------------------

    def _complete(self, group: int, state: CollectiveState, ok: bool,
                  value: Optional[int] = None,
                  reason: Optional[str] = None) -> None:
        self._groups.pop(group, None)
        for command, reverse_path in state.parked:
            info: dict[str, Any] = {"coll": group, "epoch": state.epoch,
                                    "value": value}
            if reason is not None:
                info["reason"] = reason
            self._send_reply(command, ok, reverse_path, **info)
        self.hub.count("collective.releases", len(state.parked))
        if ok:
            self.hub.count(f"collective.{state.kind}_completions")

    def _reset_group(self, command: HubCommand, reverse_path: list) -> None:
        group = command.param
        state = self._groups.pop(group, None)
        parked = len(state.parked) if state is not None else 0
        if state is not None:
            for parked_cmd, parked_path in state.parked:
                self._send_reply(parked_cmd, False, parked_path, coll=group,
                                 epoch=state.epoch, reason="group reset")
        self.registers.pop(group, None)
        self.hub.count("collective.resets")
        self._send_reply(command, True, reverse_path,
                         coll=group, cleared=parked)

    def reset(self) -> None:
        """Supervisor HUB reset (``SV_RESET_HUB``): drop all state.

        Parked joins fail cleanly so waiting CABs see an error instead
        of a hang.
        """
        for group, state in list(self._groups.items()):
            self._complete(group, state, ok=False, reason="hub reset")
        self._groups.clear()
        self.registers.clear()

    # ------------------------------------------------------------------

    def _send_reply(self, command: HubCommand, ok: bool,
                    reverse_path: list, **info: Any) -> None:
        """Answer a collective command over its recorded reverse path."""
        reply = Reply(seq=command.seq, ok=ok, hub_id=self.hub.name,
                      info=dict(info))
        reply.info["route"] = list(reverse_path)
        self.hub.count("replies_sent")
        self.hub.route_reply(reply)

    def status(self) -> dict[str, Any]:
        """Snapshot for ``SV_READ_STATUS`` / the instrumentation board."""
        return {
            "registers": dict(self.registers),
            "groups": {
                group: {"kind": state.kind, "epoch": state.epoch,
                        "arrived": state.arrived,
                        "expected": state.expected,
                        "parked": len(state.parked)}
                for group, state in sorted(self._groups.items())
            },
        }
