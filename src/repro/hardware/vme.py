"""The VME bus between a node and its CAB (§5.2).

The CAB occupies a 24-bit region of the node's VME address space; node and
CAB communicate through shared buffers, DMA, and VME interrupts.  The bus
moves 10 MB/s and admits one bus master at a time.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import CabConfig
from ..sim import Resource, Simulator, units

__all__ = ["VmeBus"]


class VmeBus:
    """A single-master bus shared by the node and the CAB."""

    def __init__(self, sim: Simulator, cfg: CabConfig, name: str) -> None:
        self.sim = sim
        self.cfg = cfg
        self.name = name
        self._bus = Resource(sim, capacity=1)
        self.bytes_transferred = 0
        self.interrupts_to_node = 0
        self.interrupts_to_cab = 0
        self._node_handler: Optional[Callable[[int], None]] = None
        self._cab_handler: Optional[Callable[[int], None]] = None

    @property
    def bytes_per_ns(self) -> float:
        return self.cfg.vme_bytes_per_ns

    def transfer(self, num_bytes: int, rate: Optional[float] = None):
        """Timed bus transfer (generator).  One master at a time."""
        if num_bytes <= 0:
            return
        grant = self._bus.acquire()
        yield grant
        try:
            effective = min(rate or self.bytes_per_ns, self.bytes_per_ns)
            yield self.sim.timeout(units.transfer_time(num_bytes, effective))
            self.bytes_transferred += num_bytes
        finally:
            self._bus.release()

    def transfer_time(self, num_bytes: int) -> int:
        """Uncontended transfer duration (for analytic checks)."""
        return units.transfer_time(num_bytes, self.bytes_per_ns)

    def register_metrics(self, registry, sampler) -> None:
        """Sampled bus utilization and cumulative interrupt counts."""
        sampler.add_utilization_probe(
            f"{self.name}.util", lambda: self.bytes_transferred,
            1.0 / self.bytes_per_ns,
            description="VME bus busy fraction (10 MB/s ceiling, §5.2)")
        sampler.add_probe(
            f"{self.name}.irq_node", lambda: float(self.interrupts_to_node),
            description="cumulative CAB-to-node interrupts", unit="irqs")
        sampler.add_probe(
            f"{self.name}.irq_cab", lambda: float(self.interrupts_to_cab),
            description="cumulative node-to-CAB interrupts", unit="irqs")

    # ------------------------------------------------------------------
    # interrupts
    # ------------------------------------------------------------------

    def on_node_interrupt(self, handler: Callable[[int], None]) -> None:
        self._node_handler = handler

    def on_cab_interrupt(self, handler: Callable[[int], None]) -> None:
        self._cab_handler = handler

    def interrupt_node(self, vector: int = 0) -> None:
        """CAB → node interrupt (message delivery, service completion)."""
        self.interrupts_to_node += 1
        if self._node_handler is not None:
            self._node_handler(vector)

    def interrupt_cab(self, vector: int = 0) -> None:
        """Node → CAB interrupt (service requests)."""
        self.interrupts_to_cab += 1
        if self._cab_handler is not None:
            self._cab_handler(vector)
