"""The CAB's DMA controller (§5.1–5.2).

The controller manages simultaneous transfers between the incoming and
outgoing fibers and CAB memory, and between VME and CAB memory, leaving
the CPU free for protocol and application processing.  It also handles
flow control: it waits for data to arrive if the input queue is empty and
for data to drain if the output queue is full.

One channel per direction; each channel is busy for the duration of its
transfer.  Memory-bandwidth accounting goes through the board's
:class:`~repro.hardware.memory.BandwidthPool`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Resource

__all__ = ["DmaController"]

if TYPE_CHECKING:  # pragma: no cover
    from .cab import CabBoard
    from .frames import Packet

#: Bytes the inbound DMA may lag behind the fiber (burst granularity).
DRAIN_RESIDUAL_BYTES = 32


class DmaController:
    """Four-port DMA engine: fiber-in, fiber-out, VME-in, VME-out."""

    def __init__(self, cab: "CabBoard") -> None:
        self.cab = cab
        self.sim = cab.sim
        self.cfg = cab.cfg
        self.fiber_out = Resource(self.sim, capacity=1)
        self.fiber_in = Resource(self.sim, capacity=1)
        self.vme_in = Resource(self.sim, capacity=1)
        self.vme_out = Resource(self.sim, capacity=1)
        self.transfers = 0
        self.bytes_out = 0
        self.bytes_in = 0
        self.bytes_vme = 0

    def register_metrics(self, registry, sampler) -> None:
        """Sampled channel occupancy and cumulative transfer volume.

        Each channel's busy level is sampled as 0/1 (the channels are
        capacity-1 resources); the mean of the series over a run is the
        channel's busy fraction — the number the paper's §5.1 concurrency
        argument is about.
        """
        base = f"{self.cab.name}.dma"
        for channel_name, channel in (("fiber_out", self.fiber_out),
                                      ("fiber_in", self.fiber_in),
                                      ("vme_in", self.vme_in),
                                      ("vme_out", self.vme_out)):
            sampler.add_probe(
                f"{base}.{channel_name}_busy",
                lambda channel=channel: float(channel.in_use),
                description=f"DMA {channel_name} channel occupancy")
        sampler.add_probe(
            f"{base}.bytes_out", lambda: float(self.bytes_out),
            description="cumulative bytes DMAed to the fiber", unit="bytes")
        sampler.add_probe(
            f"{base}.bytes_in", lambda: float(self.bytes_in),
            description="cumulative bytes DMAed from the fiber",
            unit="bytes")

    # ------------------------------------------------------------------

    def send_packet(self, packet: "Packet"):
        """DMA a packet from data memory to the outgoing fiber (generator).

        Completes when the tail has left the CAB; memory is read at fiber
        pace for the duration ("gathers the packet when it transfers the
        data to the fiber output queue using DMA", §6.2.1).
        """
        grant = self.fiber_out.acquire()
        yield grant
        stream = self.cab.memory_pool.open_stream(
            self.cab.fiber_rate_bytes_per_ns)
        try:
            yield self.sim.timeout(self.cfg.dma_start_ns)
            yield self.cab.transmit(packet)
            self.transfers += 1
            self.bytes_out += packet.wire_size()
        finally:
            self.cab.memory_pool.close_stream(stream)
            self.fiber_out.release()

    def drain_input(self, wire_size: int, tail_time: int):
        """DMA an arrived packet from the input queue to memory (generator).

        The DMA keeps pace with the fiber, so completion is bounded by the
        tail's arrival plus a small burst residual.
        """
        grant = self.fiber_in.acquire()
        yield grant
        stream = self.cab.memory_pool.open_stream(
            self.cab.fiber_rate_bytes_per_ns)
        try:
            yield self.sim.timeout(self.cfg.dma_start_ns)
            remaining = tail_time - self.sim.now
            if remaining > 0:
                # Flow control: wait for the data to arrive (§5.2).
                yield self.sim.timeout(remaining)
            residual = min(wire_size, DRAIN_RESIDUAL_BYTES)
            yield from self.cab.memory_pool.transfer(
                residual, self.cab.memory_pool.capacity)
            self.transfers += 1
            self.bytes_in += wire_size
        finally:
            self.cab.memory_pool.close_stream(stream)
            self.fiber_in.release()

    def vme_transfer(self, num_bytes: int, to_cab: bool):
        """DMA between node memory and CAB data memory over VME (generator)."""
        channel = self.vme_in if to_cab else self.vme_out
        grant = channel.acquire()
        yield grant
        stream = self.cab.memory_pool.open_stream(self.cfg.vme_bytes_per_ns)
        try:
            yield self.sim.timeout(self.cfg.dma_start_ns)
            yield from self.cab.vme.transfer(num_bytes)
            self.transfers += 1
            self.bytes_vme += num_bytes
        finally:
            self.cab.memory_pool.close_stream(stream)
            channel.release()

    def memory_copy(self, num_bytes: int):
        """CPU-initiated memory-to-memory move inside data memory."""
        yield from self.cab.memory_pool.transfer(
            num_bytes, self.cab.memory_pool.capacity / 2)
