"""CAB hardware timers (§5.1).

"Hardware timers allow time-outs to be set by the software with low
overhead" — arming or cancelling a timer costs
:attr:`~repro.config.CabConfig.timer_set_ns` of CPU time (charged by the
caller); expiry invokes the callback directly, modelling the timer
interrupt.
"""

from __future__ import annotations

from itertools import count
from typing import Callable

from ..sim import Simulator

_timer_ids = count(1)


class TimerHandle:
    """A cancellable armed timer."""

    __slots__ = ("timer_id", "deadline", "_callback", "cancelled", "fired")

    def __init__(self, timer_id: int, deadline: int,
                 callback: Callable[[], None]) -> None:
        self.timer_id = timer_id
        self.deadline = deadline
        self._callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> bool:
        """Disarm; returns False if the timer already fired."""
        if self.fired:
            return False
        self.cancelled = True
        return True

    def _expire(self) -> None:
        if self.cancelled or self.fired:
            return
        self.fired = True
        self._callback()


class HardwareTimers:
    """The CAB's bank of hardware timers."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.armed = 0
        self.expired = 0
        self.cancelled = 0

    def set(self, delay: int, callback: Callable[[], None]) -> TimerHandle:
        """Arm a timer ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative timer delay {delay}")
        handle = TimerHandle(next(_timer_ids), self.sim.now + delay, callback)
        self.armed += 1

        def expire() -> None:
            if handle.cancelled:
                self.cancelled += 1
                return
            self.expired += 1
            handle._expire()

        self.sim.call_in(delay, expire)
        return handle
